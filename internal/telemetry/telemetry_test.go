package telemetry

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	// The disabled configuration: nil registry hands out nil instruments
	// and every method is a no-op. Any panic here fails the contract.
	var r *Registry
	r.Counter("a").Inc()
	r.Counter("a").Add(3)
	r.ShardedCounter("b").Inc()
	r.Gauge("c").Set(2)
	r.Gauge("c").Add(-1)
	r.Histogram("d").Observe(0.5)
	r.RegisterCounter("e", &Counter{})
	r.RegisterGauge("f", &Gauge{})
	r.RegisterCollector(func(set func(string, float64)) { set("x", 1) })

	if v := r.Counter("a").Value(); v != 0 {
		t.Fatalf("nil counter Value = %d", v)
	}
	if v := r.Gauge("c").Value(); v != 0 {
		t.Fatalf("nil gauge Value = %g", v)
	}
	if n := r.Histogram("d").Count(); n != 0 {
		t.Fatalf("nil histogram Count = %d", n)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}

	var s *Sampler
	s.AddProbe("p", func(float64) float64 { return 1 })
	s.Sample(0)
	if got := s.Series(); len(got.Points) != 0 {
		t.Fatalf("nil sampler has points: %+v", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs")
	c2 := r.Counter("reqs")
	if c1 != c2 {
		t.Fatal("Counter not idempotent per name")
	}
	g1, g2 := r.Gauge("depth"), r.Gauge("depth")
	if g1 != g2 {
		t.Fatal("Gauge not idempotent per name")
	}
	h1, h2 := r.Histogram("lat"), r.Histogram("lat")
	if h1 != h2 {
		t.Fatal("Histogram not idempotent per name")
	}
}

func TestSnapshotAndCollector(t *testing.T) {
	r := NewRegistry()
	r.Counter("grid_requests_total").Add(7)
	r.Gauge("queue_depth").Set(3.5)
	r.Histogram("latency_s").Observe(0.25)

	// Attach a pre-existing counter (the agent-stats pattern).
	own := &Counter{}
	own.Add(11)
	r.RegisterCounter("agent_pulls_total", own)

	// Collector computes a derived value at snapshot time.
	r.RegisterCollector(func(set func(string, float64)) { set("pace_hit_ratio", 0.75) })

	snap := r.Snapshot()
	if snap.Counters["grid_requests_total"] != 7 {
		t.Fatalf("counter: %+v", snap.Counters)
	}
	if snap.Counters["agent_pulls_total"] != 11 {
		t.Fatalf("registered counter: %+v", snap.Counters)
	}
	if snap.Gauges["queue_depth"] != 3.5 {
		t.Fatalf("gauge: %+v", snap.Gauges)
	}
	if snap.Gauges["pace_hit_ratio"] != 0.75 {
		t.Fatalf("collector output missing: %+v", snap.Gauges)
	}
	h := snap.Histograms["latency_s"]
	if h.Count != 1 || h.Sum != 0.25 {
		t.Fatalf("histogram snapshot: %+v", h)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	// Counters, sharded counters, gauges and histograms must tally
	// exactly under concurrent writers (and pass -race).
	var (
		c  Counter
		sc ShardedCounter
		g  Gauge
	)
	h := NewHistogram()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				sc.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	const want = workers * per
	if c.Value() != want {
		t.Fatalf("Counter = %d, want %d", c.Value(), want)
	}
	if sc.Value() != want {
		t.Fatalf("ShardedCounter = %d, want %d", sc.Value(), want)
	}
	if g.Value() != want {
		t.Fatalf("Gauge = %g, want %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Fatalf("Histogram = %d, want %d", h.Count(), want)
	}
}

func TestConcurrentSnapshotWhileWriting(t *testing.T) {
	// A scrape must be safe while instruments are being hammered — the
	// live /metrics contract.
	r := NewRegistry()
	c := r.Counter("hot")
	h := r.Histogram("hot_latency_s")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			c.Inc()
			h.Observe(0.002)
		}
	}()
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
	}
	<-done
	if got := r.Snapshot().Counters["hot"]; got != 5000 {
		t.Fatalf("final counter = %d, want 5000", got)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("queue_depth"); got != "queue_depth" {
		t.Fatalf("no labels: %q", got)
	}
	got := Label("queue_depth", "resource", "S1", "tier", "leaf")
	want := `queue_depth{resource="S1",tier="leaf"}`
	if got != want {
		t.Fatalf("Label = %q, want %q", got, want)
	}
	base, labels := splitName(got)
	if base != "queue_depth" || labels != `resource="S1",tier="leaf"` {
		t.Fatalf("splitName = %q, %q", base, labels)
	}
	base, labels = splitName("plain")
	if base != "plain" || labels != "" {
		t.Fatalf("splitName plain = %q, %q", base, labels)
	}
}
