package telemetry

// The virtual-time series layer: where internal/metrics reduces a
// finished run to §3.3 totals, the Sampler snapshots the registry at a
// fixed period of the *simulated* clock, so a scenario run yields
// per-resource trajectories — queue depth over time, ε accumulating,
// cache hit ratio warming up — on the same time axis as the workload.
//
// The Sampler is driven by the single simulator goroutine (an Every
// event wired by core.Grid), so unlike live scrapes its probes may read
// grid state directly: anything the simulator domain owns (scheduler
// queues, committed records) is safe here and ONLY here. Probes must be
// read-only and draw no randomness — the sampler runs interleaved with
// scheduling events and must not perturb them.

// Point is one sample: every registry value plus every probe, flattened
// to name → value, at virtual time T (seconds).
type Point struct {
	T float64            `json:"t"`
	V map[string]float64 `json:"v"`
}

// Series is a sampled run: points at Period intervals of virtual time.
type Series struct {
	Period float64 `json:"period_s"`
	Points []Point `json:"points"`
}

// maxPoints bounds a series; when a run outlives it, the sampler halves
// its resolution (drops every other retained point, doubles the period)
// so unbounded scenarios cost bounded memory.
const maxPoints = 2048

// Sampler snapshots a registry on a virtual-time period. Not
// goroutine-safe: one owner (the simulator event loop) calls Sample;
// Series is read after the run. All methods no-op on nil.
type Sampler struct {
	reg    *Registry
	period float64
	probes []probe
	points []Point
}

type probe struct {
	name string
	fn   func(now float64) float64
}

// NewSampler samples reg every period seconds of virtual time. A
// period <= 0 defaults to 10 s (the advert/pull cadence of the case
// study).
func NewSampler(reg *Registry, period float64) *Sampler {
	if period <= 0 {
		period = 10
	}
	return &Sampler{reg: reg, period: period}
}

// Period returns the current sampling period in virtual seconds.
func (s *Sampler) Period() float64 {
	if s == nil {
		return 0
	}
	return s.period
}

// AddProbe registers a named read-only probe evaluated at each sample.
// Probes exist for values that live in the simulator domain and have no
// atomic instrument — queue depths walked from scheduler state,
// grid-wide ε accumulated over committed records.
func (s *Sampler) AddProbe(name string, fn func(now float64) float64) {
	if s == nil || fn == nil {
		return
	}
	s.probes = append(s.probes, probe{name: name, fn: fn})
}

// Sample records one point at virtual time now. When the series is at
// capacity it is decimated: every other point is dropped and the period
// doubles, after which off-period calls are ignored.
func (s *Sampler) Sample(now float64) {
	if s == nil {
		return
	}
	if n := len(s.points); n > 0 {
		// After decimation the driving event still fires on the original
		// period; keep only on-(new-)period samples. The final sample of a
		// run (post-drain) may fall off-period — admit anything beyond the
		// current horizon.
		if now < s.points[n-1].T+s.period*0.999 {
			return
		}
	}
	snap := s.reg.Snapshot()
	v := make(map[string]float64, len(snap.Counters)+len(snap.Gauges)+2*len(snap.Histograms)+len(s.probes))
	for name, c := range snap.Counters {
		v[name] = float64(c)
	}
	for name, g := range snap.Gauges {
		v[name] = g
	}
	for name, h := range snap.Histograms {
		v[name+"_count"] = float64(h.Count)
		v[name+"_sum"] = h.Sum
	}
	for _, p := range s.probes {
		v[p.name] = p.fn(now)
	}
	s.points = append(s.points, Point{T: now, V: v})
	if len(s.points) >= maxPoints {
		kept := s.points[:0]
		for i := 0; i < len(s.points); i += 2 {
			kept = append(kept, s.points[i])
		}
		s.points = kept
		s.period *= 2
	}
}

// Series returns the sampled series (a shallow copy of the point
// slice); empty on nil.
func (s *Sampler) Series() Series {
	if s == nil {
		return Series{}
	}
	out := Series{Period: s.period, Points: make([]Point, len(s.points))}
	copy(out.Points, s.points)
	return out
}
