package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Live exposition for the daemons: GET /metrics serves the registry in
// Prometheus text format (or JSON with ?format=json), GET /healthz
// answers 200/503 from a caller-supplied check. Handlers only call
// Registry.Snapshot, which reads atomic instruments — scraping never
// takes a lock shared with node goroutines.

// NewHandler returns the /metrics + /healthz mux for reg. healthz may be
// nil (always healthy); a non-nil error means 503 with the error text.
func NewHandler(reg *Registry, healthz func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", " ")
			_ = enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Server is a live metrics endpoint bound to one registry.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// StartServer serves /metrics and /healthz for reg on addr (host:port;
// port 0 picks a free one). It returns once the listener is bound; the
// accept loop runs in a background goroutine until Close.
func StartServer(addr string, reg *Registry, healthz func() error) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:      NewHandler(reg, healthz),
		ReadTimeout:  5 * time.Second,
		WriteTimeout: 10 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string {
	if s == nil || s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}
