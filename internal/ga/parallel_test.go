package ga

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/pace"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// caseStudyProblem builds the 20-task scheduling problem used by the
// hot-path benches: the seven Table 1 applications cycled over a 16-node
// resource, predictions served by a shared (warm) evaluation engine.
func caseStudyProblem(t *testing.T, engine *pace.Engine) *schedule.Problem {
	t.Helper()
	lib := pace.CaseStudyLibrary()
	names := lib.Names()
	tasks := make([]schedule.Task, 20)
	for i := range tasks {
		m, ok := lib.Lookup(names[i%len(names)])
		if !ok {
			t.Fatalf("missing model %q", names[i%len(names)])
		}
		tasks[i] = schedule.Task{ID: i + 1, App: m, Deadline: 500}
	}
	pred := func(app *pace.AppModel, k int) float64 {
		return engine.MustPredict(app, pace.SunUltra5, k)
	}
	return schedule.NewProblem(tasks, schedule.NewResource(16), 0, pred)
}

// TestRunDeterministicAcrossWorkers asserts the tentpole's determinism
// contract: Run with Workers 1, 4 and 16 produces bit-identical Best,
// BestCost and History on the case-study problem. CI runs this under
// -race, which also checks the worker pool for data races.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	engine := pace.NewEngine()
	cfg := DefaultConfig()
	cfg.MaxGenerations = 20
	cfg.ConvergenceWindow = 0

	type outcome struct {
		best    schedule.Solution
		cost    float64
		history []float64
		evals   int
	}
	run := func(workers int) outcome {
		p := caseStudyProblem(t, engine)
		c := cfg
		c.Workers = workers
		res := Run[schedule.Solution](p, c, sim.NewRNG(42), []schedule.Solution{p.GreedySeed()})
		return outcome{best: res.Best, cost: res.BestCost, history: res.History, evals: res.CostEvals}
	}

	ref := run(1)
	if math.IsInf(ref.cost, 1) {
		t.Fatal("sequential run found no solution")
	}
	for _, workers := range []int{4, 16} {
		got := run(workers)
		if got.cost != ref.cost {
			t.Errorf("Workers=%d: BestCost = %v, want %v", workers, got.cost, ref.cost)
		}
		if !reflect.DeepEqual(got.best, ref.best) {
			t.Errorf("Workers=%d: Best diverged from sequential run", workers)
		}
		if !reflect.DeepEqual(got.history, ref.history) {
			t.Errorf("Workers=%d: History = %v, want %v", workers, got.history, ref.history)
		}
		if got.evals != ref.evals {
			t.Errorf("Workers=%d: CostEvals = %d, want %d", workers, got.evals, ref.evals)
		}
	}
}

// TestSanitizeWorkers checks the Workers clamps: non-positive values run
// sequentially and the pool never exceeds the population.
func TestSanitizeWorkers(t *testing.T) {
	c := Config{PopulationSize: 8, MaxGenerations: 1, Workers: -3}
	c.sanitize()
	if c.Workers != 1 {
		t.Fatalf("Workers = %d after sanitize, want 1", c.Workers)
	}
	c = Config{PopulationSize: 8, MaxGenerations: 1, Workers: 64}
	c.sanitize()
	if c.Workers != 8 {
		t.Fatalf("Workers = %d after sanitize, want population size 8", c.Workers)
	}
}
