// Package ga implements the iterative heuristic kernel of the paper's
// local grid scheduler: a genetic algorithm with a fixed population size,
// stochastic remainder selection and dynamic fitness scaling (§2.1).
//
// The engine is generic over the genome type; the scheduling-specific
// two-part coding scheme, crossover and mutation operators live in
// internal/schedule.
package ga

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Problem defines a minimisation problem over genomes of type G. Cost is
// the f_c of the paper (eq. 8): lower is better. The engine converts costs
// to fitness values with the dynamic scaling of eq. 9.
type Problem[G any] interface {
	// Random returns a new random genome.
	Random(rng *sim.RNG) G
	// Crossover combines two parents into two offspring. Implementations
	// must not mutate the parents.
	Crossover(a, b G, rng *sim.RNG) (G, G)
	// Mutate returns a mutated copy of g, leaving g intact.
	Mutate(g G, rng *sim.RNG) G
	// Cost evaluates the genome; lower is better. Cost must be pure (no
	// observable side effects on the problem or genome) and safe for
	// concurrent use when Config.Workers > 1: the engine evaluates the
	// population on a worker pool.
	Cost(g G) float64
	// Clone returns an independent deep copy of g.
	Clone(g G) G
}

// Config holds the GA hyper-parameters. The paper fixes the population at
// 50 (§2.2) but leaves rates unspecified; DefaultConfig supplies
// conventional values, all of which the ablation benches sweep.
type Config struct {
	PopulationSize    int     // fixed population size (paper: 50)
	MaxGenerations    int     // hard generation budget per scheduling event
	CrossoverRate     float64 // probability a selected pair recombines
	MutationRate      float64 // probability an offspring is mutated
	Elitism           int     // number of best genomes copied unchanged
	ConvergenceWindow int     // stop early after this many generations without improvement; 0 disables

	// Workers bounds the goroutines evaluating Cost over the population
	// each generation; values ≤ 1 evaluate sequentially. The run is
	// bit-identical for any worker count: costs are written by population
	// index, the per-generation best is chosen by an index-order scan
	// after the pool joins, and the RNG is only touched in the
	// single-threaded select/recombine phase. Requires a concurrency-safe
	// Problem.Cost (see Problem).
	Workers int
}

// DefaultConfig returns the configuration used by the case study.
func DefaultConfig() Config {
	return Config{
		PopulationSize:    50,
		MaxGenerations:    60,
		CrossoverRate:     0.8,
		MutationRate:      0.25,
		Elitism:           2,
		ConvergenceWindow: 12,
	}
}

func (c *Config) sanitize() {
	if c.PopulationSize < 2 {
		c.PopulationSize = 2
	}
	if c.MaxGenerations < 1 {
		c.MaxGenerations = 1
	}
	if c.CrossoverRate < 0 {
		c.CrossoverRate = 0
	}
	if c.CrossoverRate > 1 {
		c.CrossoverRate = 1
	}
	if c.MutationRate < 0 {
		c.MutationRate = 0
	}
	if c.MutationRate > 1 {
		c.MutationRate = 1
	}
	if c.Elitism < 0 {
		c.Elitism = 0
	}
	if c.Elitism >= c.PopulationSize {
		c.Elitism = c.PopulationSize - 1
	}
	if c.ConvergenceWindow < 0 {
		c.ConvergenceWindow = 0
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Workers > c.PopulationSize {
		c.Workers = c.PopulationSize
	}
}

// Result reports the outcome of a GA run.
type Result[G any] struct {
	Best        G
	BestCost    float64
	Generations int       // generations actually executed
	CostEvals   int       // number of Cost invocations
	History     []float64 // best cost after each generation
}

// Run evolves a population and returns the best genome found. seeds are
// injected into the initial population (cloned first), which is how the
// scheduler carries the previous best schedule across scheduling events so
// the evolutionary process "absorbs system changes" (§1).
func Run[G any](p Problem[G], cfg Config, rng *sim.RNG, seeds []G) Result[G] {
	cfg.sanitize()

	pop := make([]G, 0, cfg.PopulationSize)
	for _, s := range seeds {
		if len(pop) == cfg.PopulationSize {
			break
		}
		pop = append(pop, p.Clone(s))
	}
	for len(pop) < cfg.PopulationSize {
		pop = append(pop, p.Random(rng))
	}

	res := Result[G]{BestCost: math.Inf(1)}
	costs := make([]float64, cfg.PopulationSize)
	stale := 0

	for gen := 0; gen < cfg.MaxGenerations; gen++ {
		// Evaluate the population. With Workers > 1 the Cost calls run on
		// a bounded pool, each result written to its own index; the best
		// is then chosen by a sequential index-order scan, so the outcome
		// is bit-identical to the sequential engine.
		evaluate(p, pop, costs, cfg.Workers)
		res.CostEvals += len(pop)
		genBest, genBestCost := -1, math.Inf(1)
		for i, c := range costs {
			if c < genBestCost {
				genBest, genBestCost = i, c
			}
		}
		if genBestCost < res.BestCost {
			res.Best = p.Clone(pop[genBest])
			res.BestCost = genBestCost
			stale = 0
		} else {
			stale++
		}
		res.Generations = gen + 1
		res.History = append(res.History, res.BestCost)
		if cfg.ConvergenceWindow > 0 && stale >= cfg.ConvergenceWindow {
			break
		}
		if gen == cfg.MaxGenerations-1 {
			break
		}

		// Select a mating pool via stochastic remainder selection over the
		// dynamically scaled fitness (eq. 9).
		fitness := scaleFitness(costs)
		pool := stochasticRemainder(pop, fitness, cfg.PopulationSize, rng, p)

		// Recombine pairs and mutate.
		next := make([]G, 0, cfg.PopulationSize)
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		for i := 0; i+1 < len(pool); i += 2 {
			a, b := pool[i], pool[i+1]
			if rng.Bool(cfg.CrossoverRate) {
				a, b = p.Crossover(a, b, rng)
			} else {
				a, b = p.Clone(a), p.Clone(b)
			}
			next = append(next, a, b)
		}
		if len(pool)%2 == 1 {
			next = append(next, p.Clone(pool[len(pool)-1]))
		}
		for i := range next {
			if rng.Bool(cfg.MutationRate) {
				next[i] = p.Mutate(next[i], rng)
			}
		}

		// Elitism: the best genome so far always survives, plus clones of
		// the generation's best for Elitism slots.
		for i := 0; i < cfg.Elitism && i < len(next); i++ {
			next[i] = p.Clone(res.Best)
		}
		pop = next[:cfg.PopulationSize]
	}
	return res
}

// evaluate fills costs[i] = p.Cost(pop[i]). With workers > 1 the calls
// are distributed over a bounded pool via an atomic index counter; each
// worker writes only its claimed indices, so no result depends on
// scheduling order. Cost must be pure, which the scheduling Problem
// guarantees (per-goroutine scratch builders over an immutable problem
// instance), so the cost vector is identical for any worker count.
func evaluate[G any](p Problem[G], pop []G, costs []float64, workers int) {
	if workers <= 1 || len(pop) < 2 {
		for i, g := range pop {
			costs[i] = p.Cost(g)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pop) {
					return
				}
				costs[i] = p.Cost(pop[i])
			}
		}()
	}
	wg.Wait()
}

// scaleFitness applies the paper's dynamic scaling (eq. 9):
//
//	f_v = (fc_max − fc_k) / (fc_max − fc_min)
//
// so the worst genome in the current population has fitness 0 and the best
// has fitness 1. A degenerate population (all equal costs) gets uniform
// fitness 1.
func scaleFitness(costs []float64) []float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range costs {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	out := make([]float64, len(costs))
	if hi == lo {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	span := hi - lo
	for i, c := range costs {
		out[i] = (hi - c) / span
	}
	return out
}

// stochasticRemainder fills a mating pool of size n. Each individual first
// receives floor(e_k) deterministic copies, where e_k is its expected count
// f_k·n/Σf; remaining slots are filled by Bernoulli trials on the
// fractional parts (stochastic remainder selection without replacement).
func stochasticRemainder[G any](pop []G, fitness []float64, n int, rng *sim.RNG, p Problem[G]) []G {
	total := 0.0
	for _, f := range fitness {
		total += f
	}
	pool := make([]G, 0, n)
	if total <= 0 {
		// All fitness zero: select uniformly.
		for len(pool) < n {
			pool = append(pool, p.Clone(pop[rng.Intn(len(pop))]))
		}
		return pool
	}

	frac := make([]float64, len(pop))
	for i, f := range fitness {
		expected := f / total * float64(n)
		whole := math.Floor(expected)
		frac[i] = expected - whole
		for c := 0; c < int(whole) && len(pool) < n; c++ {
			pool = append(pool, p.Clone(pop[i]))
		}
	}
	// Fill the remainder by cycling Bernoulli trials on the fractional
	// parts. The attempts are bounded: when the fractional parts are
	// degenerate (all ~0, e.g. every expected count integral after
	// rounding) the trials cannot fill the pool, and the remaining slots
	// are then filled explicitly in best-fitness order — not, as a naive
	// guard would, with uniformly random individuals that ignore fitness.
	for guard := 0; guard < 16*n && len(pool) < n; guard++ {
		i := rng.Intn(len(pop))
		if rng.Bool(frac[i]) {
			pool = append(pool, p.Clone(pop[i]))
		}
	}
	return fillFromBest(pool, pop, fitness, n, p)
}

// fillFromBest tops the mating pool up to n by cycling through the
// population in descending fitness order (ties broken by index, so the
// fill is deterministic). It is the explicit fallback for degenerate
// selection states where Bernoulli trials on the fractional parts cannot
// terminate.
func fillFromBest[G any](pool []G, pop []G, fitness []float64, n int, p Problem[G]) []G {
	if len(pool) >= n {
		return pool
	}
	order := make([]int, len(pop))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fitness[order[a]] > fitness[order[b]] })
	for k := 0; len(pool) < n; k++ {
		pool = append(pool, p.Clone(pop[order[k%len(order)]]))
	}
	return pool
}
