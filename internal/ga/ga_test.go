package ga

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// oneMax is a classic GA sanity problem: maximise the number of set bits,
// expressed as minimising the number of clear bits.
type oneMax struct{ bits int }

func (p oneMax) Random(rng *sim.RNG) []bool {
	g := make([]bool, p.bits)
	for i := range g {
		g[i] = rng.Bool(0.5)
	}
	return g
}

func (p oneMax) Crossover(a, b []bool, rng *sim.RNG) ([]bool, []bool) {
	cut := rng.Intn(p.bits)
	c := make([]bool, p.bits)
	d := make([]bool, p.bits)
	copy(c, a[:cut])
	copy(c[cut:], b[cut:])
	copy(d, b[:cut])
	copy(d[cut:], a[cut:])
	return c, d
}

func (p oneMax) Mutate(g []bool, rng *sim.RNG) []bool {
	out := p.Clone(g)
	out[rng.Intn(p.bits)] = !out[rng.Intn(p.bits)]
	return out
}

func (p oneMax) Cost(g []bool) float64 {
	clear := 0
	for _, b := range g {
		if !b {
			clear++
		}
	}
	return float64(clear)
}

func (p oneMax) Clone(g []bool) []bool {
	out := make([]bool, len(g))
	copy(out, g)
	return out
}

func TestGASolvesOneMax(t *testing.T) {
	p := oneMax{bits: 32}
	cfg := DefaultConfig()
	cfg.MaxGenerations = 200
	cfg.ConvergenceWindow = 0
	res := Run[[]bool](p, cfg, sim.NewRNG(1), nil)
	if res.BestCost > 2 {
		t.Fatalf("GA left %v clear bits after %d generations", res.BestCost, res.Generations)
	}
}

func TestGABeatsRandomSearch(t *testing.T) {
	p := oneMax{bits: 64}
	rng := sim.NewRNG(2)
	cfg := DefaultConfig()
	cfg.MaxGenerations = 50
	cfg.ConvergenceWindow = 0
	res := Run[[]bool](p, cfg, rng, nil)

	// Random search with the same evaluation budget.
	randRng := sim.NewRNG(2)
	bestRandom := math.Inf(1)
	for i := 0; i < res.CostEvals; i++ {
		if c := p.Cost(p.Random(randRng)); c < bestRandom {
			bestRandom = c
		}
	}
	if res.BestCost >= bestRandom {
		t.Fatalf("GA (%v) did not beat random search (%v) at equal budget %d", res.BestCost, bestRandom, res.CostEvals)
	}
}

func TestGADeterministicGivenSeed(t *testing.T) {
	p := oneMax{bits: 40}
	cfg := DefaultConfig()
	a := Run[[]bool](p, cfg, sim.NewRNG(7), nil)
	b := Run[[]bool](p, cfg, sim.NewRNG(7), nil)
	if a.BestCost != b.BestCost || a.Generations != b.Generations || a.CostEvals != b.CostEvals {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestGABestCostMonotoneNonIncreasing(t *testing.T) {
	p := oneMax{bits: 48}
	cfg := DefaultConfig()
	cfg.MaxGenerations = 80
	res := Run[[]bool](p, cfg, sim.NewRNG(3), nil)
	for i := 1; i < len(res.History); i++ {
		if res.History[i] > res.History[i-1] {
			t.Fatalf("best cost regressed at generation %d: %v", i, res.History)
		}
	}
	if res.History[len(res.History)-1] != res.BestCost {
		t.Fatalf("history end %v != BestCost %v", res.History[len(res.History)-1], res.BestCost)
	}
}

func TestGASeedsAreUsed(t *testing.T) {
	p := oneMax{bits: 64}
	perfect := make([]bool, 64)
	for i := range perfect {
		perfect[i] = true
	}
	cfg := DefaultConfig()
	cfg.MaxGenerations = 1 // no time to discover the optimum by search
	res := Run[[]bool](p, cfg, sim.NewRNG(4), [][]bool{perfect})
	if res.BestCost != 0 {
		t.Fatalf("seeded optimum lost: best cost %v", res.BestCost)
	}
}

func TestGASeedsAreCloned(t *testing.T) {
	p := oneMax{bits: 16}
	seed := make([]bool, 16)
	cfg := DefaultConfig()
	cfg.MaxGenerations = 30
	Run[[]bool](p, cfg, sim.NewRNG(5), [][]bool{seed})
	for i, b := range seed {
		if b {
			t.Fatalf("caller's seed mutated at bit %d", i)
		}
	}
}

func TestGAConvergenceWindowStopsEarly(t *testing.T) {
	p := oneMax{bits: 4} // trivially solved, then stalls
	cfg := DefaultConfig()
	cfg.MaxGenerations = 1000
	cfg.ConvergenceWindow = 5
	res := Run[[]bool](p, cfg, sim.NewRNG(6), nil)
	if res.Generations >= 1000 {
		t.Fatalf("convergence window did not stop the run (%d generations)", res.Generations)
	}
	if res.BestCost != 0 {
		t.Fatalf("4-bit one-max unsolved: %v", res.BestCost)
	}
}

func TestGAConfigSanitisation(t *testing.T) {
	p := oneMax{bits: 8}
	cfg := Config{
		PopulationSize: -5,
		MaxGenerations: 0,
		CrossoverRate:  7,
		MutationRate:   -1,
		Elitism:        100,
	}
	// Must not panic and must return a valid result.
	res := Run[[]bool](p, cfg, sim.NewRNG(8), nil)
	if res.Generations != 1 {
		t.Fatalf("sanitised MaxGenerations produced %d generations, want 1", res.Generations)
	}
	if math.IsInf(res.BestCost, 1) {
		t.Fatal("no genome evaluated")
	}
}

func TestScaleFitness(t *testing.T) {
	f := scaleFitness([]float64{10, 20, 30})
	if f[0] != 1 || f[2] != 0 || f[1] != 0.5 {
		t.Fatalf("scaleFitness = %v, want [1 0.5 0]", f)
	}
	// Degenerate population: uniform fitness.
	f = scaleFitness([]float64{5, 5, 5})
	for _, v := range f {
		if v != 1 {
			t.Fatalf("degenerate scaleFitness = %v, want all 1", f)
		}
	}
}

func TestScaleFitnessBestIsHighest(t *testing.T) {
	costs := []float64{3, 9, 1, 7}
	f := scaleFitness(costs)
	bestIdx, bestFit := 0, f[0]
	for i, v := range f {
		if v > bestFit {
			bestIdx, bestFit = i, v
		}
	}
	if bestIdx != 2 {
		t.Fatalf("lowest cost did not get highest fitness: costs=%v fitness=%v", costs, f)
	}
}

func TestStochasticRemainderProportionality(t *testing.T) {
	// Individual 0 has fitness 3, individual 1 has fitness 1: expect ~3x
	// more copies of 0 in the pool.
	p := oneMax{bits: 2}
	pop := [][]bool{{true, true}, {false, false}}
	rng := sim.NewRNG(9)
	count0 := 0
	const rounds = 500
	const n = 8
	for r := 0; r < rounds; r++ {
		pool := stochasticRemainder(pop, []float64{3, 1}, n, rng, p)
		if len(pool) != n {
			t.Fatalf("pool size %d, want %d", len(pool), n)
		}
		for _, g := range pool {
			if g[0] {
				count0++
			}
		}
	}
	frac := float64(count0) / float64(rounds*n)
	if frac < 0.70 || frac > 0.80 {
		t.Fatalf("individual with 75%% fitness share received %.1f%% of pool slots", frac*100)
	}
}

func TestStochasticRemainderAllZeroFitness(t *testing.T) {
	p := oneMax{bits: 2}
	pop := [][]bool{{true, false}, {false, true}}
	pool := stochasticRemainder(pop, []float64{0, 0}, 10, sim.NewRNG(10), p)
	if len(pool) != 10 {
		t.Fatalf("pool size %d, want 10", len(pool))
	}
}

func TestStochasticRemainderPoolIsCloned(t *testing.T) {
	p := oneMax{bits: 2}
	pop := [][]bool{{true, true}}
	pool := stochasticRemainder(pop, []float64{1}, 3, sim.NewRNG(11), p)
	pool[0][0] = false
	if !pop[0][0] {
		t.Fatal("mutating the pool mutated the source population")
	}
}

// TestFillFromBest drives the degenerate all-zero-fractions selection
// state directly: the Bernoulli trials on the fractional parts can never
// fire, the pool is underfilled, and the explicit fallback must fill the
// remaining slots from best-fitness order (deterministically, cycling,
// with clones).
func TestFillFromBest(t *testing.T) {
	p := oneMax{bits: 2}
	pop := [][]bool{{false, false}, {true, true}, {true, false}}
	fitness := []float64{0, 1, 0.5} // all fractional parts zero: trials cannot fill
	pool := fillFromBest(nil, pop, fitness, 7, p)
	if len(pool) != 7 {
		t.Fatalf("pool size %d, want 7", len(pool))
	}
	// Best-fitness order is individual 1, then 2, then 0, cycling.
	wantIdx := []int{1, 2, 0, 1, 2, 0, 1}
	for k, want := range wantIdx {
		if got := pool[k]; got[0] != pop[want][0] || got[1] != pop[want][1] {
			t.Errorf("slot %d = %v, want clone of individual %d (%v)", k, got, want, pop[want])
		}
	}
	// The fill must clone, not alias.
	pool[0][0] = !pool[0][0]
	if !pop[1][0] {
		t.Fatal("fallback fill aliased the source population")
	}
}

// TestFillFromBestTieBreaksByIndex pins the determinism of the fallback:
// equal fitness fills in index order.
func TestFillFromBestTieBreaksByIndex(t *testing.T) {
	p := oneMax{bits: 1}
	pop := [][]bool{{true}, {false}, {true}}
	pool := fillFromBest(nil, pop, []float64{1, 1, 1}, 3, p)
	want := []bool{true, false, true} // index order 0, 1, 2
	for k := range pool {
		if pool[k][0] != want[k] {
			t.Fatalf("slot %d = %v, want index-order fill %v", k, pool[k][0], want)
		}
	}
}

// TestFillFromBestNoopWhenFull asserts a full pool passes through
// untouched.
func TestFillFromBestNoopWhenFull(t *testing.T) {
	p := oneMax{bits: 1}
	pop := [][]bool{{true}}
	pool := []([]bool){{false}, {false}}
	out := fillFromBest(pool, pop, []float64{1}, 2, p)
	if len(out) != 2 || out[0][0] || out[1][0] {
		t.Fatal("fillFromBest modified an already-full pool")
	}
}
