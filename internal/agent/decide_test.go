package agent

import (
	"errors"
	"testing"

	"repro/internal/pace"
	"repro/internal/scheduler"
)

func TestDecideLocalWhenDeadlineMet(t *testing.T) {
	e := pace.NewEngine()
	_, child := pair(t, e)
	d := child.Decide(Request{App: appOf(t, "fft"), Env: "test", Deadline: 1e9}, 0)
	if d.Kind != DecideLocal {
		t.Fatalf("kind = %v, want DecideLocal", d.Kind)
	}
	if d.Eta <= 0 {
		t.Fatalf("no η estimate: %+v", d)
	}
	if len(d.Visited) != 1 || d.Visited[0] != "slow" {
		t.Fatalf("visited = %v", d.Visited)
	}
}

func TestDecideForwardToBetterNeighbour(t *testing.T) {
	e := pace.NewEngine()
	_, child := pair(t, e)
	d := child.Decide(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 10}, 0)
	if d.Kind != DecideForward {
		t.Fatalf("kind = %v, want DecideForward", d.Kind)
	}
	if d.Peer == nil || d.Peer.PeerName() != "fast" {
		t.Fatalf("peer = %v", d.Peer)
	}
}

func TestDecideEscalateWhenNoNeighbourMatches(t *testing.T) {
	// Leaf whose only neighbour (its parent) is already visited can only
	// escalate... which the visited-set forbids, so it must fall back.
	// Use a middle agent with a visited parent and no lowers to hit the
	// escalate-skipped path; the request came FROM the parent.
	e := pace.NewEngine()
	head := newAgent(t, "head", pace.SunSPARCstation2, 16, e)
	mid := newAgent(t, "mid", pace.SunSPARCstation2, 16, e)
	if err := Link(head, mid); err != nil {
		t.Fatal(err)
	}
	head.Pull(0)
	mid.Pull(0)
	d := mid.Decide(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 1, Visited: []string{"head"}}, 0)
	// Impossible deadline, parent visited: fallback at this agent.
	if d.Kind != DecideFallbackLocal && d.Kind != DecideFallbackRemote {
		t.Fatalf("kind = %v, want a fallback", d.Kind)
	}
}

func TestDecideEscalatePath(t *testing.T) {
	// A leaf with an unvisited parent and no matching advertisements must
	// escalate. Keep the parent's advertisement absent (no Pull) so no
	// neighbour matches.
	e := pace.NewEngine()
	head := newAgent(t, "head", pace.SGIOrigin2000, 16, e)
	leaf := newAgent(t, "leaf", pace.SunSPARCstation2, 16, e)
	if err := Link(head, leaf); err != nil {
		t.Fatal(err)
	}
	// No Pull: the leaf has no service information at all.
	d := leaf.Decide(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 10}, 0)
	if d.Kind != DecideEscalate {
		t.Fatalf("kind = %v, want DecideEscalate", d.Kind)
	}
	if d.Peer.PeerName() != "head" {
		t.Fatalf("escalation target %s", d.Peer.PeerName())
	}
}

func TestDecideFailWhenNoEnvironmentAnywhere(t *testing.T) {
	e := pace.NewEngine()
	_, child := pair(t, e)
	d := child.Decide(Request{App: appOf(t, "fft"), Env: "quantum", Deadline: 1e9, Visited: []string{"fast"}}, 0)
	if d.Kind != DecideFail {
		t.Fatalf("kind = %v, want DecideFail", d.Kind)
	}
	if d.Err == nil {
		t.Fatal("DecideFail without error")
	}
}

// failingPeer implements Peer but refuses everything — the "neighbour
// failed outright" path.
type failingPeer struct{ name string }

func (p *failingPeer) PeerName() string { return p.name }
func (p *failingPeer) PullService() (scheduler.ServiceInfo, error) {
	return scheduler.ServiceInfo{
		Name: p.name, HWType: "SGIOrigin2000", NProc: 16,
		Environments: []string{"test"}, Freetime: 0,
	}, nil
}
func (p *failingPeer) Handle(Request, float64) (Dispatch, error) {
	return Dispatch{}, errors.New("boom")
}
func (p *failingPeer) SubmitDirect(Request, float64) (Dispatch, error) {
	return Dispatch{}, errors.New("boom")
}

func TestHandleRequestSurvivesForwardFailure(t *testing.T) {
	// The child's best match is a peer that fails outright; the request
	// must still land somewhere (local fallback) rather than error out.
	e := pace.NewEngine()
	child := newAgent(t, "solo", pace.SunSPARCstation2, 16, e)
	ghost := &failingPeer{name: "ghost"}
	if err := child.SetUpper(ghost); err != nil {
		t.Fatal(err)
	}
	child.Pull(0) // caches the ghost's attractive advertisement

	// Tight deadline: local can't meet it, the ghost looks perfect, but
	// every call to it fails.
	d, err := child.HandleRequest(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 10}, 0)
	if err != nil {
		t.Fatalf("request lost after peer failure: %v", err)
	}
	if d.Resource != "solo" || !d.Fallback {
		t.Fatalf("dispatch = %+v, want local fallback", d)
	}
	if child.Stats().Fallbacks == 0 {
		t.Fatalf("stats: %+v", child.Stats())
	}
}

func TestPullToleratesFailingPeer(t *testing.T) {
	e := pace.NewEngine()
	child := newAgent(t, "solo", pace.SGIOrigin2000, 4, e)
	bad := &erroringAdvertPeer{}
	if err := child.SetUpper(bad); err != nil {
		t.Fatal(err)
	}
	child.Pull(0) // must not panic or cache garbage
	if len(child.CachedServiceNames()) != 0 {
		t.Fatalf("cached garbage: %v", child.CachedServiceNames())
	}
}

type erroringAdvertPeer struct{}

func (p *erroringAdvertPeer) PeerName() string { return "bad" }
func (p *erroringAdvertPeer) PullService() (scheduler.ServiceInfo, error) {
	return scheduler.ServiceInfo{}, errors.New("unreachable")
}
func (p *erroringAdvertPeer) Handle(Request, float64) (Dispatch, error) {
	return Dispatch{}, errors.New("unreachable")
}
func (p *erroringAdvertPeer) SubmitDirect(Request, float64) (Dispatch, error) {
	return Dispatch{}, errors.New("unreachable")
}

func TestDecideDoesNotDispatch(t *testing.T) {
	// Decide must have no scheduling side effects: the queue stays empty.
	e := pace.NewEngine()
	_, child := pair(t, e)
	_ = child.Decide(Request{App: appOf(t, "fft"), Env: "test", Deadline: 1e9}, 0)
	if child.Local().QueueLen() != 0 {
		t.Fatal("Decide queued a task")
	}
}

func TestVisitedListPropagates(t *testing.T) {
	e := pace.NewEngine()
	_, child := pair(t, e)
	d := child.Decide(Request{App: appOf(t, "fft"), Env: "test", Deadline: 1e9, Visited: []string{"x", "y"}}, 0)
	if len(d.Visited) != 3 || d.Visited[2] != "slow" {
		t.Fatalf("visited = %v", d.Visited)
	}
}
