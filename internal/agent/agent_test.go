package agent

import (
	"strings"
	"testing"

	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/sim"
)

func newLocal(t testing.TB, name string, hw pace.Hardware, nodes int, engine *pace.Engine) *scheduler.Local {
	t.Helper()
	l, err := scheduler.NewLocal(scheduler.Config{
		Name: name, HW: hw, NumNodes: nodes,
		Policy: scheduler.NewFIFOPolicy(), Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newAgent(t testing.TB, name string, hw pace.Hardware, nodes int, engine *pace.Engine) *Agent {
	t.Helper()
	a, err := New(newLocal(t, name, hw, nodes, engine), engine)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func appOf(t testing.TB, name string) *pace.AppModel {
	t.Helper()
	m, ok := pace.CaseStudyLibrary().Lookup(name)
	if !ok {
		t.Fatalf("no model %q", name)
	}
	return m
}

// pair builds a two-agent hierarchy: head (fast) with one child (slow).
func pair(t testing.TB, engine *pace.Engine) (head, child *Agent) {
	t.Helper()
	head = newAgent(t, "fast", pace.SGIOrigin2000, 16, engine)
	child = newAgent(t, "slow", pace.SunSPARCstation2, 16, engine)
	if err := Link(head, child); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHierarchy([]*Agent{head, child}); err != nil {
		t.Fatal(err)
	}
	head.Pull(0)
	child.Pull(0)
	return head, child
}

func TestNewValidation(t *testing.T) {
	e := pace.NewEngine()
	if _, err := New(nil, e); err == nil {
		t.Error("nil local accepted")
	}
	if _, err := New(newLocal(t, "x", pace.SGIOrigin2000, 2, e), nil); err == nil {
		t.Error("nil engine accepted")
	}
	a := newAgent(t, "x", pace.SGIOrigin2000, 2, e)
	if a.PullPeriod != DefaultPullPeriod {
		t.Fatalf("pull period %v, want %v (§4.1 ten seconds)", a.PullPeriod, DefaultPullPeriod)
	}
}

func TestLocalPriority(t *testing.T) {
	// The local resource can meet the deadline, so the request must stay
	// local even though the neighbour is faster.
	e := pace.NewEngine()
	_, child := pair(t, e)
	req := Request{App: appOf(t, "fft"), Env: "test", Deadline: 1000}
	d, err := child.HandleRequest(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Resource != "slow" {
		t.Fatalf("dispatched to %s; local scheduler must get priority", d.Resource)
	}
	if d.Fallback {
		t.Fatal("local accept flagged as fallback")
	}
	if child.Stats().LocalAccept != 1 {
		t.Fatalf("stats: %+v", child.Stats())
	}
}

func TestForwardToNeighbourWhenLocalCannotMeetDeadline(t *testing.T) {
	// sweep3d on SPARCstation2 takes at best 4*4.5 = 18s; a 10s deadline
	// forces discovery to the fast neighbour (min 4s).
	e := pace.NewEngine()
	head, child := pair(t, e)
	req := Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 10}
	d, err := child.HandleRequest(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Resource != "fast" {
		t.Fatalf("dispatched to %s, want fast", d.Resource)
	}
	if child.Stats().Forwarded != 1 {
		t.Fatalf("child stats: %+v", child.Stats())
	}
	if head.Stats().LocalAccept != 1 {
		t.Fatalf("head stats: %+v", head.Stats())
	}
}

func TestEnvironmentMatchmaking(t *testing.T) {
	e := pace.NewEngine()
	lFast, err := scheduler.NewLocal(scheduler.Config{
		Name: "mpiOnly", HW: pace.SGIOrigin2000, NumNodes: 16,
		Policy: scheduler.NewFIFOPolicy(), Engine: e, Environments: []string{"mpi"},
	})
	if err != nil {
		t.Fatal(err)
	}
	head, _ := New(lFast, e)
	child := newAgent(t, "testEnv", pace.SunSPARCstation2, 16, e)
	if err := Link(head, child); err != nil {
		t.Fatal(err)
	}
	head.Pull(0)
	child.Pull(0)
	// Tight deadline the slow child cannot meet, but the fast parent only
	// speaks MPI: the request must stay on the child via fallback rather
	// than land on an incompatible environment.
	req := Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 10}
	d, err := child.HandleRequest(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Resource != "testEnv" {
		t.Fatalf("request landed on %s which does not support the test environment", d.Resource)
	}
	if !d.Fallback {
		t.Fatal("expected a fallback dispatch")
	}
}

func TestEscalationThroughHierarchy(t *testing.T) {
	// Three-level chain: grandchild (slow) -> child (slow) -> head (fast).
	// The grandchild only knows the child; a tight deadline escalates to
	// the head where the fast resource is found.
	e := pace.NewEngine()
	head := newAgent(t, "head", pace.SGIOrigin2000, 16, e)
	mid := newAgent(t, "mid", pace.SunSPARCstation2, 16, e)
	leaf := newAgent(t, "leaf", pace.SunSPARCstation2, 16, e)
	if err := Link(head, mid); err != nil {
		t.Fatal(err)
	}
	if err := Link(mid, leaf); err != nil {
		t.Fatal(err)
	}
	for _, a := range []*Agent{head, mid, leaf} {
		a.Pull(0)
	}
	req := Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 10}
	d, err := leaf.HandleRequest(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Resource != "head" {
		t.Fatalf("dispatched to %s, want head", d.Resource)
	}
	if leaf.Stats().Escalated+mid.Stats().Escalated+leaf.Stats().Forwarded+mid.Stats().Forwarded == 0 {
		t.Fatal("request reached the head without any forwarding or escalation")
	}
}

func TestFallbackAtHead(t *testing.T) {
	// Deadline impossible everywhere: the head falls back to the best-η
	// resource instead of dropping the task.
	e := pace.NewEngine()
	head, child := pair(t, e)
	req := Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 0.5}
	d, err := child.HandleRequest(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fallback {
		t.Fatal("impossible deadline did not trigger fallback")
	}
	if d.Resource != "fast" { // lowest η overall
		t.Fatalf("fallback chose %s, want fast", d.Resource)
	}
	if head.Stats().Fallbacks != 1 {
		t.Fatalf("head stats: %+v", head.Stats())
	}
}

func TestStaleAdvertisementsAreClampedToNow(t *testing.T) {
	e := pace.NewEngine()
	_, child := pair(t, e)
	// Advertisements pulled at t=0 claim freetime 0; by t=500 the
	// neighbour estimate must be at least now + best exec time.
	cs := child.cache["fast"]
	eta, err := child.estimateRemote(cs, appOf(t, "sweep3d"), 500)
	if err != nil {
		t.Fatal(err)
	}
	if eta < 504 {
		t.Fatalf("stale advertisement not clamped: η = %v", eta)
	}
}

func TestNoRoutingLoopWithStaleData(t *testing.T) {
	// Two slow siblings under a slow head, advertisements all claiming
	// freetime 0 forever. An impossible deadline must terminate (visited
	// set) rather than ping-pong between siblings.
	e := pace.NewEngine()
	head := newAgent(t, "h", pace.SunSPARCstation2, 16, e)
	a := newAgent(t, "a", pace.SunSPARCstation2, 16, e)
	b := newAgent(t, "b", pace.SunSPARCstation2, 16, e)
	if err := Link(head, a); err != nil {
		t.Fatal(err)
	}
	if err := Link(head, b); err != nil {
		t.Fatal(err)
	}
	for _, ag := range []*Agent{head, a, b} {
		ag.Pull(0)
	}
	req := Request{App: appOf(t, "improc"), Env: "test", Deadline: 1}
	done := make(chan struct{})
	var d Dispatch
	var err error
	go func() {
		d, err = a.HandleRequest(req, 0)
		close(done)
	}()
	<-done
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fallback {
		t.Fatal("expected fallback for impossible deadline")
	}
}

func TestPullPopulatesCache(t *testing.T) {
	e := pace.NewEngine()
	head, child := pair(t, e)
	names := head.CachedServiceNames()
	if len(names) != 1 || names[0] != "slow" {
		t.Fatalf("head cache = %v", names)
	}
	names = child.CachedServiceNames()
	if len(names) != 1 || names[0] != "fast" {
		t.Fatalf("child cache = %v", names)
	}
	if head.Stats().Pulls != 1 || child.Stats().Pulls != 1 {
		t.Fatal("pull counters wrong")
	}
}

func TestAdvertisedFreetimeDrivesPlacement(t *testing.T) {
	// Load the fast resource heavily, re-pull, and check a loose-deadline
	// task submitted to the slow agent stays local because the fast
	// resource's advertised freetime now makes it unattractive.
	e := pace.NewEngine()
	head, child := pair(t, e)
	for i := 0; i < 40; i++ {
		if _, err := head.Local().Submit(appOf(t, "improc"), 1e9, 0); err != nil {
			t.Fatal(err)
		}
	}
	child.Pull(1)
	req := Request{App: appOf(t, "fft"), Env: "test", Deadline: 1e9}
	d, err := child.HandleRequest(req, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Resource != "slow" {
		t.Fatalf("request chased an overloaded resource: %s", d.Resource)
	}
}

func TestHierarchyValidation(t *testing.T) {
	e := pace.NewEngine()
	a := newAgent(t, "a", pace.SGIOrigin2000, 2, e)
	b := newAgent(t, "b", pace.SGIOrigin2000, 2, e)
	c := newAgent(t, "c", pace.SGIOrigin2000, 2, e)

	if err := Link(a, a); err == nil {
		t.Error("self-link accepted")
	}
	if err := Link(nil, a); err == nil {
		t.Error("nil parent accepted")
	}
	if err := Link(a, b); err != nil {
		t.Fatal(err)
	}
	if err := Link(c, b); err == nil {
		t.Error("double parent accepted")
	}
	if err := Link(b, a); err == nil {
		t.Error("cycle accepted")
	}

	// Two heads: a and c.
	if _, err := NewHierarchy([]*Agent{a, b, c}); err == nil || !strings.Contains(err.Error(), "exactly one head") {
		t.Errorf("two-headed hierarchy accepted: %v", err)
	}
	if err := Link(a, c); err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy([]*Agent{a, b, c})
	if err != nil {
		t.Fatal(err)
	}
	if h.Head() != a {
		t.Fatal("wrong head")
	}
	if _, ok := h.Lookup("b"); !ok {
		t.Fatal("lookup failed")
	}
	if _, ok := h.Lookup("zz"); ok {
		t.Fatal("phantom lookup succeeded")
	}
	if _, err := NewHierarchy(nil); err == nil {
		t.Error("empty hierarchy accepted")
	}
	if _, err := NewHierarchy([]*Agent{a, b}); err == nil {
		t.Error("hierarchy with unreachable declared set accepted")
	}
}

func TestHierarchyDuplicateNames(t *testing.T) {
	e := pace.NewEngine()
	a := newAgent(t, "dup", pace.SGIOrigin2000, 2, e)
	b := newAgent(t, "dup", pace.SGIOrigin2000, 2, e)
	if err := Link(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := NewHierarchy([]*Agent{a, b}); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestHierarchyNaturalOrder(t *testing.T) {
	e := pace.NewEngine()
	agents := []*Agent{
		newAgent(t, "S1", pace.SGIOrigin2000, 2, e),
		newAgent(t, "S2", pace.SGIOrigin2000, 2, e),
		newAgent(t, "S10", pace.SGIOrigin2000, 2, e),
	}
	if err := Link(agents[0], agents[1]); err != nil {
		t.Fatal(err)
	}
	if err := Link(agents[0], agents[2]); err != nil {
		t.Fatal(err)
	}
	h, err := NewHierarchy(agents)
	if err != nil {
		t.Fatal(err)
	}
	names := h.Names()
	if names[0] != "S1" || names[1] != "S2" || names[2] != "S10" {
		t.Fatalf("names = %v, want natural order", names)
	}
}

func TestHierarchyDescribe(t *testing.T) {
	e := pace.NewEngine()
	head, child := pair(t, e)
	h, err := NewHierarchy([]*Agent{head, child})
	if err != nil {
		t.Fatal(err)
	}
	out := h.Describe()
	if !strings.Contains(out, "fast (SGIOrigin2000, 16)") || !strings.Contains(out, "  slow (SunSPARCstation2, 16)") {
		t.Fatalf("Describe:\n%s", out)
	}
}

func TestPullAllUsesSimulatorPeriod(t *testing.T) {
	e := pace.NewEngine()
	head, child := pair(t, e)
	h, _ := NewHierarchy([]*Agent{head, child})
	s := sim.NewSimulator()
	s.Every(DefaultPullPeriod, func(now float64) bool {
		h.PullAll(now)
		return now < 60
	})
	s.RunAll(0)
	// Initial pull at construction plus 6 periodic pulls.
	if got := head.Stats().Pulls; got != 7 {
		t.Fatalf("head pulled %d times, want 7", got)
	}
}

func TestSplitTrailingNumber(t *testing.T) {
	if p, n, ok := splitTrailingNumber("S12"); !ok || p != "S" || n != 12 {
		t.Fatalf("S12 -> %q %d %v", p, n, ok)
	}
	if _, _, ok := splitTrailingNumber("abc"); ok {
		t.Fatal("abc parsed as numbered")
	}
}
