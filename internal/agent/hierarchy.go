package agent

import (
	"fmt"
	"sort"
	"strings"
)

// Hierarchy is a tree of agents rooted at the head (the only agent with no
// upper neighbour, like S1 in Fig. 7).
type Hierarchy struct {
	head   *Agent
	byName map[string]*Agent
}

// Link makes parent the upper agent of child. Both directions are wired:
// advertisement and discovery flow to upper and lower neighbours alike.
func Link(parent, child *Agent) error {
	if parent == nil || child == nil {
		return fmt.Errorf("agent: cannot link nil agents")
	}
	if parent == child {
		return fmt.Errorf("agent: %s cannot be its own parent", parent.name)
	}
	if child.upper != nil {
		return fmt.Errorf("agent: %s already has upper agent %s", child.name, child.upper.PeerName())
	}
	// Reject cycles: walking up from parent must not reach child. Only
	// in-process ancestors can be walked; a remote upper ends the chain.
	for p := parent; p != nil; {
		if p == child {
			return fmt.Errorf("agent: linking %s under %s would create a cycle", child.name, parent.name)
		}
		next, ok := p.upper.(*Agent)
		if !ok {
			break
		}
		p = next
	}
	child.upper = parent
	parent.lowers = append(parent.lowers, child)
	return nil
}

// NewHierarchy validates that the given agents form a single tree and
// returns it. Every agent must be reachable from exactly one head.
func NewHierarchy(agents []*Agent) (*Hierarchy, error) {
	if len(agents) == 0 {
		return nil, fmt.Errorf("agent: empty hierarchy")
	}
	byName := make(map[string]*Agent, len(agents))
	var heads []*Agent
	for _, a := range agents {
		if a == nil {
			return nil, fmt.Errorf("agent: nil agent in hierarchy")
		}
		if _, dup := byName[a.name]; dup {
			return nil, fmt.Errorf("agent: duplicate agent name %q", a.name)
		}
		byName[a.name] = a
		if a.upper == nil {
			heads = append(heads, a)
		}
	}
	if len(heads) != 1 {
		names := make([]string, len(heads))
		for i, h := range heads {
			names[i] = h.name
		}
		return nil, fmt.Errorf("agent: hierarchy needs exactly one head, found %d (%s)", len(heads), strings.Join(names, ", "))
	}
	// Reachability check from the head, over in-process edges only.
	seen := map[string]bool{}
	var walk func(a *Agent)
	walk = func(a *Agent) {
		if seen[a.name] {
			return
		}
		seen[a.name] = true
		for _, l := range a.lowers {
			if la, ok := l.(*Agent); ok {
				walk(la)
			}
		}
	}
	walk(heads[0])
	if len(seen) != len(agents) {
		return nil, fmt.Errorf("agent: %d of %d agents unreachable from head %s", len(agents)-len(seen), len(agents), heads[0].name)
	}
	return &Hierarchy{head: heads[0], byName: byName}, nil
}

// Head returns the hierarchy's root agent.
func (h *Hierarchy) Head() *Agent { return h.head }

// Lookup returns the named agent.
func (h *Hierarchy) Lookup(name string) (*Agent, bool) {
	a, ok := h.byName[name]
	return a, ok
}

// Agents returns every agent sorted by name.
func (h *Hierarchy) Agents() []*Agent {
	out := make([]*Agent, 0, len(h.byName))
	for _, a := range h.byName {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return lessAgentName(out[i].name, out[j].name) })
	return out
}

// Names returns the agent names sorted naturally (S2 before S10).
func (h *Hierarchy) Names() []string {
	agents := h.Agents()
	out := make([]string, len(agents))
	for i, a := range agents {
		out[i] = a.name
	}
	return out
}

// PullAll refreshes every agent's service-information set, in name order.
func (h *Hierarchy) PullAll(now float64) {
	for _, a := range h.Agents() {
		a.Pull(now)
	}
}

// Describe renders the tree as indented text (the Fig. 7 topology).
func (h *Hierarchy) Describe() string {
	var b strings.Builder
	var walk func(a *Agent, depth int)
	walk = func(a *Agent, depth int) {
		fmt.Fprintf(&b, "%s%s (%s, %d)\n", strings.Repeat("  ", depth), a.name, a.local.Hardware().Name, a.local.NumNodes())
		lowers := a.Lowers()
		sort.Slice(lowers, func(i, j int) bool { return lessAgentName(lowers[i].PeerName(), lowers[j].PeerName()) })
		for _, l := range lowers {
			if la, ok := l.(*Agent); ok {
				walk(la, depth+1)
			} else {
				fmt.Fprintf(&b, "%s%s (remote)\n", strings.Repeat("  ", depth+1), l.PeerName())
			}
		}
	}
	walk(h.head, 0)
	return b.String()
}

// lessAgentName orders names naturally: a common prefix followed by a
// number sorts numerically (S2 < S10), anything else lexically.
func lessAgentName(a, b string) bool {
	pa, na, aok := splitTrailingNumber(a)
	pb, nb, bok := splitTrailingNumber(b)
	if aok && bok && pa == pb {
		return na < nb
	}
	return a < b
}

func splitTrailingNumber(s string) (prefix string, n int, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	num := 0
	for _, c := range s[i:] {
		num = num*10 + int(c-'0')
	}
	return s[:i], num, true
}
