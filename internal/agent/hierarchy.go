package agent

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Hierarchy is a tree of agents rooted at the head (the only agent with no
// upper neighbour, like S1 in Fig. 7). The tree is mutable at runtime —
// Attach, Detach and Rehome change membership on the virtual clock — so
// every structural access goes through a reader/writer lock: mutations are
// exclusive, and readers (Lookup, Names, Describe, ...) see the tree only
// between mutations.
type Hierarchy struct {
	mu     sync.RWMutex
	head   *Agent
	byName map[string]*Agent
}

// AlreadyLinkedError rejects wiring an upper neighbour onto a child that
// already has one: the tree allows exactly one parent per agent, so the
// existing edge must be unlinked first.
type AlreadyLinkedError struct {
	Child string // agent that was to be linked
	Upper string // its current upper neighbour
}

func (e *AlreadyLinkedError) Error() string {
	return fmt.Sprintf("agent: %s already has upper agent %s", e.Child, e.Upper)
}

// CycleError rejects a Link that would make an agent its own ancestor
// (including the degenerate self-link, where Child == Parent).
type CycleError struct {
	Child  string
	Parent string
}

func (e *CycleError) Error() string {
	if e.Child == e.Parent {
		return fmt.Sprintf("agent: %s cannot be its own parent", e.Child)
	}
	return fmt.Sprintf("agent: linking %s under %s would create a cycle", e.Child, e.Parent)
}

// NotLinkedError rejects an Unlink of two agents that are not currently a
// parent/child pair — including unlinking the head, which has no parent.
type NotLinkedError struct {
	Child  string
	Parent string
}

func (e *NotLinkedError) Error() string {
	return fmt.Sprintf("agent: %s is not a lower agent of %s", e.Child, e.Parent)
}

// Link makes parent the upper agent of child. Both directions are wired:
// advertisement and discovery flow to upper and lower neighbours alike.
func Link(parent, child *Agent) error {
	if parent == nil || child == nil {
		return fmt.Errorf("agent: cannot link nil agents")
	}
	if parent == child {
		return &CycleError{Child: child.name, Parent: parent.name}
	}
	if child.upper != nil {
		return &AlreadyLinkedError{Child: child.name, Upper: child.upper.PeerName()}
	}
	// Reject cycles: walking up from parent must not reach child. Only
	// in-process ancestors can be walked; a remote upper ends the chain.
	for p := parent; p != nil; {
		if p == child {
			return &CycleError{Child: child.name, Parent: parent.name}
		}
		next, ok := p.upper.(*Agent)
		if !ok {
			break
		}
		p = next
	}
	child.upper = parent
	parent.lowers = append(parent.lowers, child)
	return nil
}

// Unlink severs the parent/child edge wired by Link: child loses its
// upper neighbour and parent drops child from its lowers, and both sides
// forget the other's cached advertisement and breaker history. The pair
// must currently be linked; unlinking a head (no upper) or any other
// non-edge returns a NotLinkedError.
func Unlink(parent, child *Agent) error {
	if parent == nil || child == nil {
		return fmt.Errorf("agent: cannot unlink nil agents")
	}
	if up, ok := child.upper.(*Agent); !ok || up != parent {
		return &NotLinkedError{Child: child.name, Parent: parent.name}
	}
	for i, p := range parent.lowers {
		if p == Peer(child) {
			parent.lowers = append(parent.lowers[:i], parent.lowers[i+1:]...)
			child.upper = nil
			parent.Forget(child.name)
			child.Forget(parent.name)
			return nil
		}
	}
	return &NotLinkedError{Child: child.name, Parent: parent.name}
}

// NewHierarchy validates that the given agents form a single tree and
// returns it. Every agent must be reachable from exactly one head.
func NewHierarchy(agents []*Agent) (*Hierarchy, error) {
	if len(agents) == 0 {
		return nil, fmt.Errorf("agent: empty hierarchy")
	}
	byName := make(map[string]*Agent, len(agents))
	var heads []*Agent
	for _, a := range agents {
		if a == nil {
			return nil, fmt.Errorf("agent: nil agent in hierarchy")
		}
		if _, dup := byName[a.name]; dup {
			return nil, fmt.Errorf("agent: duplicate agent name %q", a.name)
		}
		byName[a.name] = a
		if a.upper == nil {
			heads = append(heads, a)
		}
	}
	if len(heads) != 1 {
		names := make([]string, len(heads))
		for i, h := range heads {
			names[i] = h.name
		}
		return nil, fmt.Errorf("agent: hierarchy needs exactly one head, found %d (%s)", len(heads), strings.Join(names, ", "))
	}
	h := &Hierarchy{head: heads[0], byName: byName}
	if err := h.validateLocked(); err != nil {
		return nil, err
	}
	return h, nil
}

// Attach links child under the named parent at runtime and registers it
// in the tree. The child must carry a name not already present.
func (h *Hierarchy) Attach(parent string, child *Agent) error {
	if child == nil {
		return fmt.Errorf("agent: attach: nil agent")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	p, ok := h.byName[parent]
	if !ok {
		return fmt.Errorf("agent: attach: unknown parent %q", parent)
	}
	if _, dup := h.byName[child.name]; dup {
		return fmt.Errorf("agent: attach: duplicate agent name %q", child.name)
	}
	if err := Link(p, child); err != nil {
		return err
	}
	h.byName[child.name] = child
	return nil
}

// Detach removes the named agent from the tree at runtime, returning its
// former parent. The departing agent's in-process lower neighbours are
// re-homed under that parent — in their existing order, so the mutation
// is deterministic — which keeps the tree connected; detaching the head
// is an error because it would orphan everything below it.
func (h *Hierarchy) Detach(name string) (*Agent, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.byName[name]
	if !ok {
		return nil, fmt.Errorf("agent: detach: unknown agent %q", name)
	}
	if a == h.head {
		return nil, fmt.Errorf("agent: detach: %s is the head of the hierarchy", name)
	}
	parent, ok := a.upper.(*Agent)
	if !ok {
		return nil, fmt.Errorf("agent: detach: %s has a remote upper agent", name)
	}
	if err := Unlink(parent, a); err != nil {
		return nil, err
	}
	for _, l := range a.Lowers() {
		la, ok := l.(*Agent)
		if !ok {
			continue
		}
		if err := Unlink(a, la); err != nil {
			return nil, err
		}
		if err := Link(parent, la); err != nil {
			return nil, err
		}
	}
	delete(h.byName, name)
	return parent, nil
}

// Rehome moves the named agent — and with it its whole subtree — under a
// new parent in one mutation, returning the former parent. The move is
// rejected when it would break the tree: moving the head, moving an
// agent under its own descendant (Link's cycle walk catches it), or
// re-homing under the current parent.
func (h *Hierarchy) Rehome(name, newParent string) (*Agent, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	a, ok := h.byName[name]
	if !ok {
		return nil, fmt.Errorf("agent: rehome: unknown agent %q", name)
	}
	np, ok := h.byName[newParent]
	if !ok {
		return nil, fmt.Errorf("agent: rehome: unknown parent %q", newParent)
	}
	if a == h.head {
		return nil, fmt.Errorf("agent: rehome: %s is the head of the hierarchy", name)
	}
	old, ok := a.upper.(*Agent)
	if !ok {
		return nil, fmt.Errorf("agent: rehome: %s has a remote upper agent", name)
	}
	if old == np {
		return nil, fmt.Errorf("agent: rehome: %s is already under %s", name, newParent)
	}
	if err := Unlink(old, a); err != nil {
		return nil, err
	}
	if err := Link(np, a); err != nil {
		// Restore the original edge so a rejected move leaves the tree
		// exactly as it found it.
		if rerr := Link(old, a); rerr != nil {
			return nil, fmt.Errorf("agent: rehome: %v (and restoring the old edge failed: %v)", err, rerr)
		}
		return nil, err
	}
	return old, nil
}

// Validate re-checks the tree invariant at runtime: a single head, every
// registered agent reachable from it over consistent in-process edges,
// no cycles. The membership registry calls this after every mutation so
// the audited guarantee — tree acyclic and connected at every virtual
// instant — rests on an actual walk, not on construction-time checks.
func (h *Hierarchy) Validate() error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.validateLocked()
}

func (h *Hierarchy) validateLocked() error {
	if h.head == nil {
		return fmt.Errorf("agent: hierarchy has no head")
	}
	if h.head.upper != nil {
		return fmt.Errorf("agent: head %s has an upper agent", h.head.name)
	}
	seen := make(map[string]bool, len(h.byName))
	var walk func(a *Agent) error
	walk = func(a *Agent) error {
		if seen[a.name] {
			return fmt.Errorf("agent: %s reachable twice from head %s — the tree has a cycle or a shared child", a.name, h.head.name)
		}
		seen[a.name] = true
		if h.byName[a.name] != a {
			return fmt.Errorf("agent: %s reachable from head %s but not registered in the hierarchy", a.name, h.head.name)
		}
		for _, l := range a.lowers {
			la, ok := l.(*Agent)
			if !ok {
				continue
			}
			if la.upper != Peer(a) {
				return fmt.Errorf("agent: %s lists %s as a lower neighbour but %s's upper is not %s", a.name, la.name, la.name, a.name)
			}
			if err := walk(la); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(h.head); err != nil {
		return err
	}
	for name := range h.byName {
		if !seen[name] {
			return fmt.Errorf("agent: %s unreachable from head %s", name, h.head.name)
		}
	}
	return nil
}

// Head returns the hierarchy's root agent.
func (h *Hierarchy) Head() *Agent {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.head
}

// Lookup returns the named agent.
func (h *Hierarchy) Lookup(name string) (*Agent, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	a, ok := h.byName[name]
	return a, ok
}

// Agents returns every agent sorted by name.
func (h *Hierarchy) Agents() []*Agent {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Agent, 0, len(h.byName))
	for _, a := range h.byName {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return lessAgentName(out[i].name, out[j].name) })
	return out
}

// Names returns the agent names sorted naturally (S2 before S10).
func (h *Hierarchy) Names() []string {
	agents := h.Agents()
	out := make([]string, len(agents))
	for i, a := range agents {
		out[i] = a.name
	}
	return out
}

// PullAll refreshes every agent's service-information set, in name order.
func (h *Hierarchy) PullAll(now float64) {
	for _, a := range h.Agents() {
		a.Pull(now)
	}
}

// Describe renders the tree as indented text (the Fig. 7 topology).
func (h *Hierarchy) Describe() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var b strings.Builder
	var walk func(a *Agent, depth int)
	walk = func(a *Agent, depth int) {
		fmt.Fprintf(&b, "%s%s (%s, %d)\n", strings.Repeat("  ", depth), a.name, a.local.Hardware().Name, a.local.NumNodes())
		lowers := a.Lowers()
		sort.Slice(lowers, func(i, j int) bool { return lessAgentName(lowers[i].PeerName(), lowers[j].PeerName()) })
		for _, l := range lowers {
			if la, ok := l.(*Agent); ok {
				walk(la, depth+1)
			} else {
				fmt.Fprintf(&b, "%s%s (remote)\n", strings.Repeat("  ", depth+1), l.PeerName())
			}
		}
	}
	walk(h.head, 0)
	return b.String()
}

// LessAgentName reports the natural name order used across the grid (S2
// before S10) — exported so other layers can keep deterministic agent
// orderings consistent with Names.
func LessAgentName(a, b string) bool { return lessAgentName(a, b) }

// lessAgentName orders names naturally: a common prefix followed by a
// number sorts numerically (S2 < S10), anything else lexically.
func lessAgentName(a, b string) bool {
	pa, na, aok := splitTrailingNumber(a)
	pb, nb, bok := splitTrailingNumber(b)
	if aok && bok && pa == pb {
		return na < nb
	}
	return a < b
}

func splitTrailingNumber(s string) (prefix string, n int, ok bool) {
	i := len(s)
	for i > 0 && s[i-1] >= '0' && s[i-1] <= '9' {
		i--
	}
	if i == len(s) {
		return s, 0, false
	}
	num := 0
	for _, c := range s[i:] {
		num = num*10 + int(c-'0')
	}
	return s[:i], num, true
}
