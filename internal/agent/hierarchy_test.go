package agent

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pace"
)

// tree builds the five-agent fixture used across the dynamic-hierarchy
// tests: head -> {a, b}, a -> {a1, a2}.
func tree(t *testing.T) (h *Hierarchy, head, a, b, a1, a2 *Agent) {
	t.Helper()
	e := pace.NewEngine()
	head = newAgent(t, "head", pace.SGIOrigin2000, 16, e)
	a = newAgent(t, "a", pace.SunUltra10, 16, e)
	b = newAgent(t, "b", pace.SunUltra10, 16, e)
	a1 = newAgent(t, "a1", pace.SunUltra5, 16, e)
	a2 = newAgent(t, "a2", pace.SunUltra5, 16, e)
	for _, l := range []struct{ p, c *Agent }{{head, a}, {head, b}, {a, a1}, {a, a2}} {
		if err := Link(l.p, l.c); err != nil {
			t.Fatal(err)
		}
	}
	h, err := NewHierarchy([]*Agent{head, a, b, a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	return h, head, a, b, a1, a2
}

func TestLinkRejectsSecondParent(t *testing.T) {
	_, _, _, b, a1, _ := tree(t)
	err := Link(b, a1)
	var al *AlreadyLinkedError
	if !errors.As(err, &al) {
		t.Fatalf("re-linking a parented child: got %v, want AlreadyLinkedError", err)
	}
	if al.Child != "a1" || al.Upper != "a" {
		t.Fatalf("error names wrong pair: %+v", al)
	}
}

func TestLinkRejectsSelfLink(t *testing.T) {
	e := pace.NewEngine()
	solo := newAgent(t, "solo", pace.SGIOrigin2000, 16, e)
	err := Link(solo, solo)
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("self-link: got %v, want CycleError", err)
	}
	if ce.Child != ce.Parent {
		t.Fatalf("self-link error should name the agent twice: %+v", ce)
	}
}

func TestLinkRejectsCycle(t *testing.T) {
	_, head, _, _, a1, _ := tree(t)
	// head under its own grandchild would make head its own ancestor: the
	// walk up from a1 (a1 -> a -> head) reaches the would-be child.
	err := Link(a1, head)
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("expected CycleError, got %v", err)
	}
	if ce.Child != "head" || ce.Parent != "a1" {
		t.Fatalf("error names wrong pair: %+v", ce)
	}
}

func TestUnlinkRequiresCurrentEdge(t *testing.T) {
	_, head, _, b, a1, _ := tree(t)
	// b is not a1's parent.
	err := Unlink(b, a1)
	var nl *NotLinkedError
	if !errors.As(err, &nl) {
		t.Fatalf("unlinking a non-edge: got %v, want NotLinkedError", err)
	}
	// The head has no parent at all.
	if err := Unlink(head, head); !errors.As(err, &nl) {
		t.Fatalf("unlinking the head from itself: got %v, want NotLinkedError", err)
	}
}

func TestUnlinkForgetsBothSides(t *testing.T) {
	_, _, a, _, a1, _ := tree(t)
	a.Pull(0)
	a1.Pull(0)
	cached := func(of *Agent, name string) bool {
		for _, n := range of.CachedServiceNames() {
			if n == name {
				return true
			}
		}
		return false
	}
	if !cached(a, "a1") {
		t.Fatal("pull did not cache the child advert")
	}
	if err := Unlink(a, a1); err != nil {
		t.Fatal(err)
	}
	if cached(a, "a1") {
		t.Fatal("parent still caches the unlinked child's advert")
	}
	if cached(a1, "a") {
		t.Fatal("child still caches the unlinked parent's advert")
	}
}

func TestAttachDetachRuntime(t *testing.T) {
	h, _, _, _, _, _ := tree(t)
	e := pace.NewEngine()
	n := newAgent(t, "n", pace.SGIOrigin2000, 16, e)
	if err := h.Attach("a", n); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, ok := h.Lookup("n"); !ok || got != n {
		t.Fatal("attached agent not in the tree")
	}
	// Attaching a duplicate name or under an unknown parent fails.
	if err := h.Attach("a", n); err == nil {
		t.Fatal("duplicate attach succeeded")
	}
	if err := h.Attach("ghost", newAgent(t, "m", pace.SGIOrigin2000, 4, e)); err == nil {
		t.Fatal("attach under unknown parent succeeded")
	}

	// Detaching a re-homes its children (a1, a2, n) under head.
	parent, err := h.Detach("a")
	if err != nil {
		t.Fatal(err)
	}
	if parent.Name() != "head" {
		t.Fatalf("detach returned parent %s, want head", parent.Name())
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("tree broken after detach: %v", err)
	}
	if _, ok := h.Lookup("a"); ok {
		t.Fatal("detached agent still registered")
	}
	up, _ := h.Lookup("a1")
	if up.Upper() == nil || up.Upper().PeerName() != "head" {
		t.Fatal("orphaned child not re-homed under the former grandparent")
	}
}

func TestDetachHeadRejected(t *testing.T) {
	h, _, _, _, _, _ := tree(t)
	if _, err := h.Detach("head"); err == nil {
		t.Fatal("detaching the head succeeded")
	}
	if _, err := h.Detach("ghost"); err == nil {
		t.Fatal("detaching an unknown agent succeeded")
	}
}

func TestRehomeMovesSubtree(t *testing.T) {
	h, _, _, _, _, _ := tree(t)
	if _, err := h.Rehome("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("tree broken after rehome: %v", err)
	}
	a, _ := h.Lookup("a")
	if a.Upper().PeerName() != "b" {
		t.Fatalf("a's upper is %s, want b", a.Upper().PeerName())
	}
	// The subtree moved with it.
	a1, _ := h.Lookup("a1")
	if a1.Upper().PeerName() != "a" {
		t.Fatal("a1 lost its parent during the move")
	}
}

func TestRehomeRejectsBreakingMoves(t *testing.T) {
	h, _, _, _, _, _ := tree(t)
	if _, err := h.Rehome("head", "b"); err == nil {
		t.Fatal("re-homing the head succeeded")
	}
	if _, err := h.Rehome("a", "head"); err == nil {
		t.Fatal("re-homing under the current parent succeeded")
	}
	// Under its own descendant: the cycle walk must reject it and leave
	// the original edge intact.
	if _, err := h.Rehome("a", "a1"); err == nil {
		t.Fatal("re-homing under a descendant succeeded")
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("rejected rehome left the tree broken: %v", err)
	}
	a, _ := h.Lookup("a")
	if a.Upper().PeerName() != "head" {
		t.Fatal("rejected rehome did not restore the old edge")
	}
}

// TestHierarchyConcurrentReaders hammers the read API while the tree
// mutates — run under -race this proves the lock discipline.
func TestHierarchyConcurrentReaders(t *testing.T) {
	h, _, _, _, _, _ := tree(t)
	e := pace.NewEngine()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = h.Names()
				_ = h.Describe()
				_, _ = h.Lookup("a1")
				_ = h.Head()
			}
		}()
	}
	for i := 0; i < 50; i++ {
		n := newAgent(t, fmt.Sprintf("x%d", i), pace.SunUltra1, 4, e)
		if err := h.Attach("b", n); err != nil {
			t.Error(err)
			break
		}
		if _, err := h.Detach(n.Name()); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
}
