package agent

import (
	"testing"

	"repro/internal/pace"
)

func TestMaybePushDeliversToNeighbours(t *testing.T) {
	e := pace.NewEngine()
	head, child := pair(t, e)

	// First push always fires.
	if sent := child.MaybePush(0); sent != 1 {
		t.Fatalf("first push delivered to %d neighbours, want 1", sent)
	}
	if head.Stats().PushesReceived != 1 {
		t.Fatalf("head stats: %+v", head.Stats())
	}
	if child.Stats().PushesSent != 1 {
		t.Fatalf("child stats: %+v", child.Stats())
	}

	// No freetime drift: second push suppressed.
	if sent := child.MaybePush(1); sent != 0 {
		t.Fatalf("push without drift delivered %d", sent)
	}

	// Load the child beyond the threshold; the push fires again.
	for i := 0; i < 10; i++ {
		if _, err := child.Local().Submit(appOf(t, "sweep3d"), 1e9, 1); err != nil {
			t.Fatal(err)
		}
	}
	if sent := child.MaybePush(2); sent != 1 {
		t.Fatalf("push after drift delivered %d, want 1", sent)
	}
	if head.Stats().PushesReceived != 2 {
		t.Fatalf("head stats after drift: %+v", head.Stats())
	}
}

func TestPushedAdvertisementUpdatesDiscovery(t *testing.T) {
	e := pace.NewEngine()
	head, child := pair(t, e)

	// Load the fast head heavily; without any refresh the child's cache
	// still claims the head is idle.
	for i := 0; i < 60; i++ {
		if _, err := head.Local().Submit(appOf(t, "improc"), 1e9, 0); err != nil {
			t.Fatal(err)
		}
	}
	// The head pushes its new state instead of waiting for the child's
	// next 10-second pull.
	if sent := head.MaybePush(1); sent != 1 {
		t.Fatalf("head push delivered %d", sent)
	}
	// A loose-deadline request at the child must now stay local: the
	// pushed advertisement reveals the head's backlog.
	d, err := child.HandleRequest(Request{App: appOf(t, "fft"), Env: "test", Deadline: 1e9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Resource != "slow" {
		t.Fatalf("request chased the loaded head despite the pushed advertisement: %s", d.Resource)
	}
}

func TestShouldPushThreshold(t *testing.T) {
	e := pace.NewEngine()
	_, child := pair(t, e)
	child.PushThreshold = 100

	si, ok := child.ShouldPush()
	if !ok {
		t.Fatal("first ShouldPush suppressed")
	}
	child.MarkPushed(si, 1)
	// Drift below the threshold: suppressed.
	if _, err := child.Local().Submit(appOf(t, "closure"), 1e9, 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := child.ShouldPush(); ok {
		t.Fatal("sub-threshold drift triggered a push")
	}
}

func TestMarkPushedIgnoresZeroSent(t *testing.T) {
	e := pace.NewEngine()
	_, child := pair(t, e)
	si, _ := child.ShouldPush()
	child.MarkPushed(si, 0)
	if child.Stats().PushesSent != 0 {
		t.Fatal("zero-delivery push counted")
	}
	if _, ok := child.ShouldPush(); !ok {
		t.Fatal("failed push suppressed the retry")
	}
}

func TestPushAdvertisementStoresUnderSenderName(t *testing.T) {
	e := pace.NewEngine()
	head, _ := pair(t, e)
	info := newLocal(t, "phantom", pace.SunUltra1, 4, e).ServiceInfo()
	if err := head.PushAdvertisement("phantom", info, 5); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range head.CachedServiceNames() {
		if n == "phantom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pushed advertisement not cached: %v", head.CachedServiceNames())
	}
	if head.Stats().PushesReceived != 1 {
		t.Fatalf("stats: %+v", head.Stats())
	}
}
