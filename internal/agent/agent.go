// Package agent implements the agent-based grid load-balancing layer of
// §3: a hierarchy of homogeneous agents, each representing one local grid
// resource as a service provider. Agents advertise service information to
// their neighbours (periodic pull, §4.1) and cooperate to discover a
// resource expected to meet each incoming task's deadline, dispatching the
// request there (eq. 10 matchmaking). Discovery is deliberately local:
// most requests settle in their neighbourhood, which is what lets the
// scheme scale without a central bottleneck (§3.1).
package agent

import (
	"fmt"
	"math"

	"repro/internal/pace"
	"repro/internal/scheduler"
	"repro/internal/telemetry"
)

// Request is a task execution request travelling through the hierarchy —
// the in-process form of the Fig. 6 message. Visited accumulates the
// agents that have already evaluated the request so stale advertisement
// data cannot produce routing loops (a mechanism the paper leaves
// unspecified).
type Request struct {
	// ReqID is the grid-wide request identity minted at arrival
	// (core.SubmitAt). It travels with the request through every
	// forward, escalation, fallback and re-dispatch, and ends up on the
	// execution record of whichever scheduler finally runs the task.
	ReqID    uint64
	App      *pace.AppModel
	Env      string
	Deadline float64 // absolute virtual time δ_r
	Email    string
	Visited  []string
}

// visited reports whether name already evaluated this request.
func (r *Request) visited(name string) bool {
	for _, v := range r.Visited {
		if v == name {
			return true
		}
	}
	return false
}

// Dispatch reports where a request ended up.
type Dispatch struct {
	Resource string  // resource/agent name that accepted the task
	TaskID   int     // scheduler-local task ID on the accepting scheduler
	ReqID    uint64  // grid-wide request identity carried by the request
	Eta      float64 // η_r estimate at dispatch time (eq. 10)
	Hops     int     // agents traversed, 0 = accepted at first agent
	Fallback bool    // true when no resource met the deadline (best effort)
}

// Stats is a point-in-time snapshot of the agent's activity counters.
type Stats struct {
	Received       int // requests evaluated at this agent
	LocalAccept    int // requests submitted to the local scheduler
	Forwarded      int // requests sent to a matched neighbour
	Escalated      int // requests pushed to the upper agent with no match
	Fallbacks      int // head-of-hierarchy best-effort dispatches
	Pulls          int // advertisement pulls performed
	PushesSent     int // event-triggered advertisements sent to neighbours
	PushesReceived int // advertisements received by push
	FailedPulls    int // per-neighbour pull attempts that errored
	Redispatches   int // tasks this agent re-placed after a resource failed
}

// statCounters holds the live counters behind Stats as atomic telemetry
// instruments. The agent itself is not safe for concurrent use, but its
// counters are read from other goroutines — the networked node serves
// Stats() to monitoring while its pull/tick loops drive the agent, and
// a telemetry registry scrapes them live — so they must be atomic.
type statCounters struct {
	received       telemetry.Counter
	localAccept    telemetry.Counter
	forwarded      telemetry.Counter
	escalated      telemetry.Counter
	fallbacks      telemetry.Counter
	pulls          telemetry.Counter
	pushesSent     telemetry.Counter
	pushesReceived telemetry.Counter
	failedPulls    telemetry.Counter
	redispatches   telemetry.Counter

	breakerTrips telemetry.Counter // health transitions: circuits opened
	breakersOpen telemetry.Gauge   // circuits currently open
}

// Gate models the network between agents: an optional hook consulted
// before every peer exchange (pull, push, forward, direct submit). A
// non-nil error means the exchange fails without reaching the peer —
// the in-process analogue of a dead daemon or a severed link, which is
// how internal/fault injects failures into the simulated grid.
type Gate interface {
	// ExchangeErr reports whether an exchange from one agent to another
	// can proceed at virtual time now.
	ExchangeErr(from, to string, now float64) error
}

// AdvertSink is implemented by peers that accept pushed advertisements
// (§3.1: "service information can be pushed to or pulled from other
// agents"). In-process agents implement it directly; remote peers carry
// the push as a Fig. 5 message over the wire.
type AdvertSink interface {
	PushAdvertisement(from string, info scheduler.ServiceInfo, now float64) error
}

// Peer is a neighbouring agent as seen from one side of an advertisement
// or discovery exchange. In a single process peers are *Agent values; in
// the networked deployment (cmd/gridagent) they are TCP stubs speaking the
// Fig. 5/6 XML formats.
type Peer interface {
	// PeerName identifies the neighbour.
	PeerName() string
	// PullService returns the neighbour's current advertisement (Fig. 5).
	PullService() (scheduler.ServiceInfo, error)
	// Handle runs service discovery for the request at the neighbour.
	Handle(req Request, now float64) (Dispatch, error)
	// SubmitDirect bypasses discovery and queues the task on the
	// neighbour's local scheduler (used by the head's fallback, where
	// discovery has already failed once).
	SubmitDirect(req Request, now float64) (Dispatch, error)
}

// cachedService is one entry of the agent's service-information set: a
// neighbour's advertisement plus its pull timestamp.
type cachedService struct {
	info      scheduler.ServiceInfo
	agentName string
	pulledAt  float64
}

// Agent is one node of the hierarchy. Each agent fronts exactly one local
// scheduler ("each agent represents a local grid resource", §1) and knows
// only its upper and lower neighbours.
//
// Agents are driven in virtual time by their caller and are not safe for
// concurrent use.
type Agent struct {
	name   string
	local  *scheduler.Local
	engine *pace.Engine

	upper  Peer
	lowers []Peer

	// PullPeriod is the advertisement refresh interval; the case study
	// uses ten seconds (§4.1).
	PullPeriod float64

	// PushThreshold is the freetime change (seconds) that triggers an
	// event-driven advertisement push; see MaybePush. The §3.1 push
	// strategy trades messages for freshness against the periodic pull.
	PushThreshold float64

	// FailureThreshold is the number of consecutive failed exchanges
	// with one peer after which that peer's circuit trips: discovery and
	// fallback skip it until a successful probe (the periodic pull keeps
	// probing tripped peers) resets the breaker.
	FailureThreshold int

	// AdvertTTL is the maximum age (seconds) of a cached advertisement
	// before discovery stops trusting it — a dead neighbour's stale
	// freetime must not keep attracting dispatches. 0 means
	// advertisements never expire (the paper's behaviour).
	AdvertTTL float64

	cache  map[string]cachedService
	stats  statCounters
	gate   Gate
	health map[string]*peerHealth

	lastPushedFreetime float64
	pushedOnce         bool
}

// peerHealth tracks one neighbour's exchange history for the circuit
// breaker.
type peerHealth struct {
	consecFails int
	tripped     bool
}

// DefaultPushThreshold is the freetime delta that triggers a push.
const DefaultPushThreshold = 5.0

// DefaultPullPeriod is the §4.1 advertisement interval in seconds.
const DefaultPullPeriod = 10.0

// DefaultFailureThreshold trips a peer's circuit after this many
// consecutive failed exchanges.
const DefaultFailureThreshold = 3

// New creates an agent fronting the given local scheduler. The agent and
// scheduler names must match: the agent is the resource's representative.
func New(local *scheduler.Local, engine *pace.Engine) (*Agent, error) {
	if local == nil {
		return nil, fmt.Errorf("agent: nil local scheduler")
	}
	if engine == nil {
		return nil, fmt.Errorf("agent: nil PACE engine")
	}
	return &Agent{
		name:             local.Name(),
		local:            local,
		engine:           engine,
		PullPeriod:       DefaultPullPeriod,
		PushThreshold:    DefaultPushThreshold,
		FailureThreshold: DefaultFailureThreshold,
		cache:            map[string]cachedService{},
		health:           map[string]*peerHealth{},
	}, nil
}

// SetGate installs the exchange gate consulted before every peer call.
func (a *Agent) SetGate(g Gate) { a.gate = g }

// gateErr asks the gate (when present) whether an exchange with the
// named peer can proceed.
func (a *Agent) gateErr(to string, now float64) error {
	if a.gate == nil {
		return nil
	}
	return a.gate.ExchangeErr(a.name, to, now)
}

func (a *Agent) healthOf(name string) *peerHealth {
	h, ok := a.health[name]
	if !ok {
		h = &peerHealth{}
		a.health[name] = h
	}
	return h
}

// RecordPeerFailure counts one failed exchange with the named peer,
// tripping its circuit at FailureThreshold consecutive failures. It
// reports whether this failure newly tripped the breaker. The networked
// node calls this for exchanges it performs outside the agent; the
// in-process paths call it internally.
func (a *Agent) RecordPeerFailure(name string) bool {
	h := a.healthOf(name)
	h.consecFails++
	threshold := a.FailureThreshold
	if threshold <= 0 {
		threshold = DefaultFailureThreshold
	}
	if !h.tripped && h.consecFails >= threshold {
		h.tripped = true
		a.stats.breakerTrips.Inc()
		a.stats.breakersOpen.Add(1)
		return true
	}
	return false
}

// RecordPeerSuccess resets the named peer's failure streak, closing a
// tripped circuit. It reports whether a tripped breaker was reset.
func (a *Agent) RecordPeerSuccess(name string) bool {
	h := a.healthOf(name)
	was := h.tripped
	h.consecFails = 0
	h.tripped = false
	if was {
		a.stats.breakersOpen.Add(-1)
	}
	return was
}

// PeerTripped reports whether the named peer's circuit is open: the
// peer is skipped by discovery and fallback until a probe succeeds.
func (a *Agent) PeerTripped(name string) bool {
	h, ok := a.health[name]
	return ok && h.tripped
}

// CountFailedPull bumps the failed-pull counter for an externally
// driven refresh attempt that errored.
func (a *Agent) CountFailedPull() { a.stats.failedPulls.Inc() }

// CountRedispatch records that this agent re-placed a task rescued from
// a failed resource (the injector drives the re-dispatch through
// HandleRequest, then attributes it here).
func (a *Agent) CountRedispatch() { a.stats.redispatches.Inc() }

// Name returns the agent's identity.
func (a *Agent) Name() string { return a.name }

// Local returns the scheduler this agent fronts.
func (a *Agent) Local() *scheduler.Local { return a.local }

// Upper returns the upper neighbour, or nil at the head of the hierarchy.
func (a *Agent) Upper() Peer { return a.upper }

// Lowers returns the lower neighbours.
func (a *Agent) Lowers() []Peer {
	out := make([]Peer, len(a.lowers))
	copy(out, a.lowers)
	return out
}

// Stats returns a snapshot of the agent's counters. The counters are
// atomic, so unlike the rest of the agent this is safe to call from any
// goroutine while the agent runs — each field is read individually, so
// the snapshot is per-counter exact but not a cross-counter cut.
func (a *Agent) Stats() Stats {
	return Stats{
		Received:       int(a.stats.received.Value()),
		LocalAccept:    int(a.stats.localAccept.Value()),
		Forwarded:      int(a.stats.forwarded.Value()),
		Escalated:      int(a.stats.escalated.Value()),
		Fallbacks:      int(a.stats.fallbacks.Value()),
		Pulls:          int(a.stats.pulls.Value()),
		PushesSent:     int(a.stats.pushesSent.Value()),
		PushesReceived: int(a.stats.pushesReceived.Value()),
		FailedPulls:    int(a.stats.failedPulls.Value()),
		Redispatches:   int(a.stats.redispatches.Value()),
	}
}

// RegisterMetrics attaches the agent's counters to a telemetry registry
// under agent_*_total{resource=...} names. The registry reads the same
// atomics the agent bumps — no double counting, no extra hot-path cost.
func (a *Agent) RegisterMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	label := func(name string) string { return telemetry.Label(name, "resource", a.name) }
	reg.RegisterCounter(label("agent_requests_received_total"), &a.stats.received)
	reg.RegisterCounter(label("agent_local_accepts_total"), &a.stats.localAccept)
	reg.RegisterCounter(label("agent_forwards_total"), &a.stats.forwarded)
	reg.RegisterCounter(label("agent_escalations_total"), &a.stats.escalated)
	reg.RegisterCounter(label("agent_fallbacks_total"), &a.stats.fallbacks)
	reg.RegisterCounter(label("agent_pulls_total"), &a.stats.pulls)
	reg.RegisterCounter(label("agent_pushes_sent_total"), &a.stats.pushesSent)
	reg.RegisterCounter(label("agent_pushes_received_total"), &a.stats.pushesReceived)
	reg.RegisterCounter(label("agent_failed_pulls_total"), &a.stats.failedPulls)
	reg.RegisterCounter(label("agent_redispatches_total"), &a.stats.redispatches)
	reg.RegisterCounter(label("agent_breaker_trips_total"), &a.stats.breakerTrips)
	reg.RegisterGauge(label("agent_breakers_open"), &a.stats.breakersOpen)
}

// SetUpper wires a remote upper neighbour; Link is the in-process
// equivalent that wires both directions at once.
func (a *Agent) SetUpper(p Peer) error {
	if p == nil {
		return fmt.Errorf("agent: nil upper peer")
	}
	if a.upper != nil {
		return &AlreadyLinkedError{Child: a.name, Upper: a.upper.PeerName()}
	}
	a.upper = p
	return nil
}

// ClearUpper unwires the upper neighbour and forgets its soft state —
// the remote counterpart of Unlink's child half, used when this agent
// gracefully deregisters from a live farm.
func (a *Agent) ClearUpper() {
	if a.upper != nil {
		a.Forget(a.upper.PeerName())
	}
	a.upper = nil
}

// AddLower wires a remote lower neighbour.
func (a *Agent) AddLower(p Peer) error {
	if p == nil {
		return fmt.Errorf("agent: nil lower peer")
	}
	a.lowers = append(a.lowers, p)
	return nil
}

// RemoveLower unwires the named lower neighbour and forgets its soft
// state, reporting whether it was present. It is the remote counterpart
// of Unlink, driven by a lower agent's graceful deregistration.
func (a *Agent) RemoveLower(name string) bool {
	for i, p := range a.lowers {
		if p.PeerName() == name {
			a.lowers = append(a.lowers[:i], a.lowers[i+1:]...)
			a.Forget(name)
			return true
		}
	}
	return false
}

// Forget drops every trace of the named peer from the agent's soft
// state: the cached advertisement — immediate expiry, so a gracefully
// departing neighbour vanishes from the service table at the leave
// event instead of ageing out through AdvertTTL — and the
// circuit-breaker history.
func (a *Agent) Forget(name string) {
	delete(a.cache, name)
	if h, ok := a.health[name]; ok {
		if h.tripped {
			a.stats.breakersOpen.Add(-1)
		}
		delete(a.health, name)
	}
}

// neighbours returns upper plus lowers.
func (a *Agent) neighbours() []Peer {
	out := make([]Peer, 0, len(a.lowers)+1)
	if a.upper != nil {
		out = append(out, a.upper)
	}
	out = append(out, a.lowers...)
	return out
}

// Pull refreshes the agent's service-information set from its upper and
// lower neighbours ("an agent pulls service information from its lower
// and upper agents every ten seconds", §4.1). Unreachable neighbours keep
// their previous advertisement (subject to AdvertTTL at read time); each
// failed attempt feeds the peer's circuit breaker, and each success
// doubles as the probe that closes a tripped breaker.
func (a *Agent) Pull(now float64) {
	for _, n := range a.neighbours() {
		name := n.PeerName()
		var info scheduler.ServiceInfo
		err := a.gateErr(name, now)
		if err == nil {
			info, err = n.PullService()
		}
		if err != nil {
			a.stats.failedPulls.Inc()
			a.RecordPeerFailure(name)
			continue
		}
		a.RecordPeerSuccess(name)
		a.cache[name] = cachedService{
			info:      info,
			agentName: name,
			pulledAt:  now,
		}
	}
	a.stats.pulls.Inc()
}

// PullBatched refreshes the advert cache exactly like Pull, but takes
// each neighbour's base advertisement from a tick-wide snapshot instead
// of recomputing ServiceInfo per puller. Within one pull tick a
// scheduler's state does not change, so every puller of the same
// publisher would compute an identical base advertisement; batching
// coalesces those O(degree) computations into one per publisher. The
// publisher's fault counters are still read live, at exchange time,
// because Pull annotates them per exchange and a lossy-gate failure
// earlier in the same tick must be visible to later pullers. Peers
// missing from the snapshot (or that are not in-process agents) fall
// back to PullService, so the two paths are behaviourally identical.
func (a *Agent) PullBatched(now float64, base func(name string) (scheduler.ServiceInfo, bool)) {
	for _, n := range a.neighbours() {
		name := n.PeerName()
		var info scheduler.ServiceInfo
		err := a.gateErr(name, now)
		if err == nil {
			snapped := false
			if peer, ok := n.(*Agent); ok {
				if si, ok := base(name); ok {
					info, snapped = si, true
					info.FailedPulls = int(peer.stats.failedPulls.Value())
					info.Redispatches = int(peer.stats.redispatches.Value())
				}
			}
			if !snapped {
				info, err = n.PullService()
			}
		}
		if err != nil {
			a.stats.failedPulls.Inc()
			a.RecordPeerFailure(name)
			continue
		}
		a.RecordPeerSuccess(name)
		a.cache[name] = cachedService{
			info:      info,
			agentName: name,
			pulledAt:  now,
		}
	}
	a.stats.pulls.Inc()
}

// StoreAdvertisement records a neighbour's advertisement pulled by an
// external driver (the networked node pulls outside the agent lock to
// avoid distributed deadlock, then stores the results through here).
func (a *Agent) StoreAdvertisement(name string, info scheduler.ServiceInfo, now float64) {
	a.cache[name] = cachedService{info: info, agentName: name, pulledAt: now}
}

// CountPull bumps the pull counter for an externally driven refresh.
func (a *Agent) CountPull() { a.stats.pulls.Inc() }

// PushAdvertisement implements AdvertSink: record a neighbour's pushed
// service information.
func (a *Agent) PushAdvertisement(from string, info scheduler.ServiceInfo, now float64) error {
	a.StoreAdvertisement(from, info, now)
	a.stats.pushesReceived.Inc()
	return nil
}

// ShouldPush reports whether the agent's service information has drifted
// enough from the last pushed advertisement to justify an event-triggered
// push, returning the current information either way.
func (a *Agent) ShouldPush() (scheduler.ServiceInfo, bool) {
	si := a.local.ServiceInfo()
	if a.pushedOnce {
		delta := si.Freetime - a.lastPushedFreetime
		if delta < 0 {
			delta = -delta
		}
		if delta < a.PushThreshold {
			return si, false
		}
	}
	return si, true
}

// MarkPushed records that the advertisement was delivered to sent
// neighbours; subsequent ShouldPush calls measure drift from this point.
func (a *Agent) MarkPushed(si scheduler.ServiceInfo, sent int) {
	if sent <= 0 {
		return
	}
	a.stats.pushesSent.Add(uint64(sent))
	a.lastPushedFreetime = si.Freetime
	a.pushedOnce = true
}

// MaybePush pushes the agent's advertisement to every neighbour that
// accepts pushes when the freetime has drifted past PushThreshold since
// the last push. It returns the number of neighbours updated. The
// networked node drives ShouldPush/MarkPushed itself so the deliveries
// can happen outside its lock.
func (a *Agent) MaybePush(now float64) int {
	si, ok := a.ShouldPush()
	if !ok {
		return 0
	}
	sent := 0
	for _, n := range a.neighbours() {
		sink, ok := n.(AdvertSink)
		if !ok {
			continue
		}
		if err := a.gateErr(n.PeerName(), now); err != nil {
			a.RecordPeerFailure(n.PeerName())
			continue
		}
		if err := sink.PushAdvertisement(a.name, si, now); err != nil {
			a.RecordPeerFailure(n.PeerName())
			continue
		}
		a.RecordPeerSuccess(n.PeerName())
		sent++
	}
	a.MarkPushed(si, sent)
	return sent
}

// PeerName implements Peer.
func (a *Agent) PeerName() string { return a.name }

// PullService implements Peer: the agent's advertisement is its local
// scheduler's service information, annotated with the agent's fault
// counters so peers can observe a resource's failure history.
func (a *Agent) PullService() (scheduler.ServiceInfo, error) {
	si := a.local.ServiceInfo()
	si.FailedPulls = int(a.stats.failedPulls.Value())
	si.Redispatches = int(a.stats.redispatches.Value())
	return si, nil
}

// Handle implements Peer.
func (a *Agent) Handle(req Request, now float64) (Dispatch, error) {
	return a.HandleRequest(req, now)
}

// SubmitDirect implements Peer.
func (a *Agent) SubmitDirect(req Request, now float64) (Dispatch, error) {
	id, err := a.local.SubmitRequest(req.App, req.Deadline, now, req.ReqID)
	if err != nil {
		return Dispatch{}, err
	}
	a.stats.localAccept.Inc()
	return Dispatch{Resource: a.name, TaskID: id, ReqID: req.ReqID, Hops: len(req.Visited), Fallback: true}, nil
}

// CachedServiceNames lists the neighbours currently in the service set.
func (a *Agent) CachedServiceNames() []string {
	out := make([]string, 0, len(a.cache))
	for n := range a.cache {
		out = append(out, n)
	}
	return out
}

// estimateRemote evaluates eq. 10 against a cached advertisement: the
// expected completion of app on the advertised resource, using the cached
// freetime ω (clamped to now — advertisements age between pulls) plus the
// best predicted execution time over the advertised node counts.
func (a *Agent) estimateRemote(cs cachedService, app *pace.AppModel, now float64) (float64, error) {
	hw, ok := pace.LookupHardware(cs.info.HWType)
	if !ok {
		return 0, fmt.Errorf("agent: %s advertises unknown hardware %q", cs.agentName, cs.info.HWType)
	}
	best := math.Inf(1)
	for k := 1; k <= cs.info.NProc; k++ {
		d, err := a.engine.Predict(app, hw, k)
		if err != nil {
			return 0, err
		}
		if d < best {
			best = d
		}
	}
	ft := cs.info.Freetime
	if now > ft {
		ft = now
	}
	return ft + best, nil
}

// fresh reports whether a cached advertisement is still within the
// agent's staleness budget. With AdvertTTL unset every advertisement is
// trusted forever, the paper's (fault-free) behaviour.
func (a *Agent) fresh(cs cachedService, now float64) bool {
	return a.AdvertTTL <= 0 || now-cs.pulledAt <= a.AdvertTTL
}

// supportsEnv checks a cached advertisement against the request's
// execution environment (the straightforward part of matchmaking, §3.2).
func supportsEnv(cs cachedService, env string) bool {
	for _, e := range cs.info.Environments {
		if e == env {
			return true
		}
	}
	return false
}

// DecisionKind classifies the outcome of one discovery step at an agent.
type DecisionKind int

// Discovery step outcomes.
const (
	// DecideLocal: the local resource meets the deadline; accept here.
	DecideLocal DecisionKind = iota
	// DecideForward: dispatch to the matched neighbour for discovery.
	DecideForward
	// DecideEscalate: no match among neighbours; submit to the upper agent.
	DecideEscalate
	// DecideFallbackLocal: head of hierarchy, no match anywhere; the local
	// resource is the best-effort target.
	DecideFallbackLocal
	// DecideFallbackRemote: head of hierarchy, no match anywhere; a
	// neighbour is the best-effort target (direct submit, no rediscovery).
	DecideFallbackRemote
	// DecideFail: no resource supports the execution environment at all.
	DecideFail
)

// Decision is one discovery step: what to do, with whom, and the visited
// list to carry forward. Decide performs no dispatch itself, which lets
// the networked node release its lock before calling the peer.
type Decision struct {
	Kind    DecisionKind
	Peer    Peer    // set for Forward, Escalate and FallbackRemote
	Eta     float64 // η estimate behind the decision, when available
	Visited []string
	Err     error // set for DecideFail
}

// Decide runs the §3.1 discovery logic for a request arriving at this
// agent: the agent's own service is evaluated first; if the local
// resource cannot meet the deadline, the cached advertisements of upper
// and lower neighbours are evaluated and the best match chosen; with no
// match the request escalates to the upper agent; at the head of the
// hierarchy a best-effort fallback targets the lowest-η candidate so the
// task is not lost (documented deviation — the paper lets discovery
// terminate unsuccessfully, but its experiments account for all 600
// tasks).
func (a *Agent) Decide(req Request, now float64) Decision {
	a.stats.received.Inc()
	visited := make([]string, 0, len(req.Visited)+1)
	visited = append(visited, req.Visited...)
	visited = append(visited, a.name)
	req.Visited = visited
	d := Decision{Visited: visited}

	// 1. Own service first ("an agent always gives priority to the local
	// scheduler", §3.2).
	if a.local.SupportsEnvironment(req.Env) {
		eta, err := a.local.EstimateCompletion(req.App)
		if err == nil && eta <= req.Deadline {
			d.Kind, d.Eta = DecideLocal, eta
			return d
		}
	}

	// 2. Evaluate neighbours' advertised services.
	if target, eta, ok := a.bestNeighbour(req, now); ok {
		a.stats.forwarded.Inc()
		d.Kind, d.Peer, d.Eta = DecideForward, target, eta
		return d
	}

	// 3. No service meets the requirement: submit to the upper agent —
	// unless its circuit is tripped, in which case this agent behaves
	// like the head and falls back rather than escalating into a known
	// failure.
	if a.upper != nil && !req.visited(a.upper.PeerName()) && !a.PeerTripped(a.upper.PeerName()) {
		a.stats.escalated.Inc()
		d.Kind, d.Peer = DecideEscalate, a.upper
		return d
	}

	// 4. Head of the hierarchy, still no match: best-effort fallback.
	a.stats.fallbacks.Inc()
	peer, eta, local, err := a.fallbackTarget(req, now, nil)
	if err != nil {
		d.Kind, d.Err = DecideFail, err
		return d
	}
	if local {
		d.Kind, d.Eta = DecideFallbackLocal, eta
		return d
	}
	d.Kind, d.Peer, d.Eta = DecideFallbackRemote, peer, eta
	return d
}

// callHandle forwards the request to the peer for discovery, feeding
// the peer's circuit breaker: a gate block counts exactly like a
// transport failure, a success closes a tripped breaker.
func (a *Agent) callHandle(p Peer, req Request, now float64) (Dispatch, error) {
	if err := a.gateErr(p.PeerName(), now); err != nil {
		a.RecordPeerFailure(p.PeerName())
		return Dispatch{}, err
	}
	d, err := p.Handle(req, now)
	if err != nil {
		a.RecordPeerFailure(p.PeerName())
		return Dispatch{}, err
	}
	a.RecordPeerSuccess(p.PeerName())
	return d, nil
}

// callSubmitDirect queues the task on the peer's scheduler directly,
// with the same health tracking as callHandle.
func (a *Agent) callSubmitDirect(p Peer, req Request, now float64) (Dispatch, error) {
	if err := a.gateErr(p.PeerName(), now); err != nil {
		a.RecordPeerFailure(p.PeerName())
		return Dispatch{}, err
	}
	d, err := p.SubmitDirect(req, now)
	if err != nil {
		a.RecordPeerFailure(p.PeerName())
		return Dispatch{}, err
	}
	a.RecordPeerSuccess(p.PeerName())
	return d, nil
}

// HandleRequest runs discovery and carries out the decision, recursing
// through in-process peers. The networked node drives the same Decide
// logic itself so it can release its lock around remote calls.
//
// Every peer failure en route (dead agent, severed link) re-enters the
// eq. 10 machinery — escalation, then the best-effort fallback — so a
// request is only ever lost when no reachable resource supports its
// environment at all.
func (a *Agent) HandleRequest(req Request, now float64) (Dispatch, error) {
	dec := a.Decide(req, now)
	req.Visited = dec.Visited
	switch dec.Kind {
	case DecideLocal:
		return a.AcceptLocal(req, now, dec.Eta, false)
	case DecideForward:
		d, err := a.callHandle(dec.Peer, req, now)
		if err == nil {
			d.Hops = len(req.Visited) // approximate travel count
			return d, nil
		}
		// The neighbour failed outright (e.g. all nodes down or
		// unreachable): continue with escalation or fallback as if no
		// neighbour had matched, never retrying the failed peer.
		failed := map[string]bool{dec.Peer.PeerName(): true}
		if a.upper != nil && !req.visited(a.upper.PeerName()) && !failed[a.upper.PeerName()] &&
			!a.PeerTripped(a.upper.PeerName()) {
			a.stats.escalated.Inc()
			if d, err := a.callHandle(a.upper, req, now); err == nil {
				return d, nil
			}
			failed[a.upper.PeerName()] = true
		}
		a.stats.fallbacks.Inc()
		return a.dispatchFallback(req, now, failed)
	case DecideEscalate:
		d, err := a.callHandle(dec.Peer, req, now)
		if err == nil {
			return d, nil
		}
		// Upper agent unreachable: behave like the head and fall back.
		a.stats.fallbacks.Inc()
		return a.dispatchFallback(req, now, map[string]bool{dec.Peer.PeerName(): true})
	case DecideFallbackLocal:
		return a.AcceptLocal(req, now, dec.Eta, true)
	case DecideFallbackRemote:
		d, err := a.callSubmitDirect(dec.Peer, req, now)
		if err != nil {
			// Best-effort target gone too: retry excluding it.
			return a.dispatchFallback(req, now, map[string]bool{dec.Peer.PeerName(): true})
		}
		d.Eta = dec.Eta
		d.Fallback = true
		return d, nil
	}
	return Dispatch{}, dec.Err
}

// ErrNoMigrationTarget rejects a migration offer: no reachable resource
// is expected to meet the task's deadline, so the task is better left
// where it is (a migration must never trade a slow placement for a
// best-effort one).
var ErrNoMigrationTarget = fmt.Errorf("agent: no deadline-meeting migration target")

// HandleMigration evaluates a migration offer: a drift-breached origin
// scheduler asking this agent to re-place one of its not-yet-started
// tasks. Unlike HandleRequest it never escalates or falls back — the
// task already has a (degraded) home, so only a placement expected to
// meet the deadline is worth the move; anything else returns
// ErrNoMigrationTarget and the task stays put. The offer carries the
// origin in Visited, excluding the drifting resource from discovery.
// Counters are touched only for paths actually taken, so a rejected
// offer leaves the agent's stats exactly as it found them.
func (a *Agent) HandleMigration(req Request, now float64) (Dispatch, error) {
	visited := make([]string, 0, len(req.Visited)+1)
	visited = append(visited, req.Visited...)
	if !req.visited(a.name) {
		visited = append(visited, a.name)
	}
	req.Visited = visited

	// Own service first, mirroring Decide's priority order.
	if a.local.SupportsEnvironment(req.Env) {
		eta, err := a.local.EstimateCompletion(req.App)
		if err == nil && eta <= req.Deadline {
			a.stats.received.Inc()
			return a.AcceptLocal(req, now, eta, false)
		}
	}
	if target, _, ok := a.bestNeighbour(req, now); ok {
		d, err := a.callHandle(target, req, now)
		if err == nil {
			a.stats.received.Inc()
			a.stats.forwarded.Inc()
			d.Hops = len(req.Visited)
			return d, nil
		}
	}
	return Dispatch{}, ErrNoMigrationTarget
}

// AcceptLocal submits the request to this agent's own scheduler.
func (a *Agent) AcceptLocal(req Request, now, eta float64, fallback bool) (Dispatch, error) {
	id, err := a.local.SubmitRequest(req.App, req.Deadline, now, req.ReqID)
	if err != nil {
		return Dispatch{}, err
	}
	a.stats.localAccept.Inc()
	hops := len(req.Visited) - 1
	if hops < 0 {
		hops = 0
	}
	return Dispatch{Resource: a.name, TaskID: id, ReqID: req.ReqID, Eta: eta, Hops: hops, Fallback: fallback}, nil
}

// bestNeighbour returns the unvisited neighbour whose advertised service
// yields the lowest η within the deadline. Peers with a tripped circuit
// or an expired advertisement are not candidates.
func (a *Agent) bestNeighbour(req Request, now float64) (Peer, float64, bool) {
	var best Peer
	bestEta := math.Inf(1)
	for _, n := range a.neighbours() {
		if req.visited(n.PeerName()) || a.PeerTripped(n.PeerName()) {
			continue
		}
		cs, ok := a.cache[n.PeerName()]
		if !ok || !supportsEnv(cs, req.Env) || !a.fresh(cs, now) {
			continue
		}
		eta, err := a.estimateRemote(cs, req.App, now)
		if err != nil || eta > req.Deadline {
			continue
		}
		if eta < bestEta {
			best, bestEta = n, eta
		}
	}
	return best, bestEta, best != nil
}

// fallbackTarget picks the minimum-η candidate among the local resource
// and every cached advertisement, ignoring deadlines. Peers in exclude
// (known to be failing) are skipped.
func (a *Agent) fallbackTarget(req Request, now float64, exclude map[string]bool) (peer Peer, eta float64, local bool, err error) {
	bestEta := math.Inf(1)
	var bestPeer Peer
	isLocal := false

	if a.local.SupportsEnvironment(req.Env) {
		if e, err := a.local.EstimateCompletion(req.App); err == nil {
			bestEta, isLocal = e, true
		}
	}
	for _, n := range a.neighbours() {
		if exclude[n.PeerName()] || a.PeerTripped(n.PeerName()) {
			continue
		}
		cs, ok := a.cache[n.PeerName()]
		if !ok || !supportsEnv(cs, req.Env) || !a.fresh(cs, now) {
			continue
		}
		e, err := a.estimateRemote(cs, req.App, now)
		if err != nil {
			continue
		}
		if e < bestEta {
			bestEta, bestPeer, isLocal = e, n, false
		}
	}
	if !isLocal && bestPeer == nil {
		return nil, 0, false, fmt.Errorf("agent: %s: no resource supports environment %q", a.name, req.Env)
	}
	return bestPeer, bestEta, isLocal, nil
}

// dispatchFallback performs the best-effort dispatch after discovery has
// failed: locally, or directly to the chosen neighbour's scheduler
// (re-running discovery there would loop). Failing peers accumulate in
// exclude so the retry chain always terminates.
func (a *Agent) dispatchFallback(req Request, now float64, exclude map[string]bool) (Dispatch, error) {
	for {
		peer, eta, local, err := a.fallbackTarget(req, now, exclude)
		if err != nil {
			return Dispatch{}, err
		}
		if local {
			return a.AcceptLocal(req, now, eta, true)
		}
		d, err := a.callSubmitDirect(peer, req, now)
		if err != nil {
			if exclude == nil {
				exclude = map[string]bool{}
			}
			exclude[peer.PeerName()] = true
			continue
		}
		d.Eta = eta
		d.Fallback = true
		return d, nil
	}
}
