package agent

import (
	"math/bits"
	"strings"
	"testing"

	"repro/internal/pace"
	"repro/internal/reserve"
)

// trio builds a three-agent chain head -> mid -> leaf so routed ops must
// traverse an intermediate hop.
func resvTrio(t *testing.T, engine *pace.Engine) (head, mid, leaf *Agent) {
	t.Helper()
	head = newAgent(t, "head", pace.SGIOrigin2000, 4, engine)
	mid = newAgent(t, "mid", pace.SGIOrigin2000, 4, engine)
	leaf = newAgent(t, "leaf", pace.SGIOrigin2000, 4, engine)
	if err := Link(head, mid); err != nil {
		t.Fatal(err)
	}
	if err := Link(mid, leaf); err != nil {
		t.Fatal(err)
	}
	return head, mid, leaf
}

func TestFloodQuoteCoversHierarchy(t *testing.T) {
	e := pace.NewEngine()
	head, _, _ := resvTrio(t, e)
	rep, err := head.HandleReserve(ReserveOp{Action: ReserveQuoteOp, Nodes: 2, Earliest: 50, Duration: 100}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quotes) != 3 {
		t.Fatalf("quotes = %+v, want one per resource", rep.Quotes)
	}
	for _, q := range rep.Quotes {
		if q.Start != 50 || q.End != 150 || bits.OnesCount64(q.Mask) != 2 {
			t.Fatalf("idle-grid quote %+v, want [50,150) on 2 nodes", q)
		}
	}
}

func TestRoutedOpsReachLeaf(t *testing.T) {
	e := pace.NewEngine()
	head, _, leaf := resvTrio(t, e)
	op := ReserveOp{
		Action: ReserveHoldOp, ResvID: 7, Holder: "u@g", Resource: "leaf",
		Mask: 0b0011, Start: 100, End: 200, TTL: 30,
	}
	if _, err := head.HandleReserve(op, 0); err != nil {
		t.Fatalf("routed hold: %v", err)
	}
	b, ok := leaf.Local().Book().Get(7)
	if !ok || b.State != reserve.Held {
		t.Fatalf("leaf booking = %+v ok=%v, want held", b, ok)
	}
	id, err := head.ConfirmPart("leaf", 7, 77, appOf(t, "fft"), 1)
	if err != nil || id == 0 {
		t.Fatalf("routed confirm: id=%d err=%v", id, err)
	}
	if err := head.ReleasePart("leaf", 7, 2); err != nil {
		t.Fatalf("routed release: %v", err)
	}
	if b, _ := leaf.Local().Book().Get(7); b.State != reserve.Released {
		t.Fatalf("state after release = %s", b.State)
	}
	// An op for a resource that does not exist is a routing miss, not an
	// application error.
	if _, err := head.HandleReserve(ReserveOp{Action: ReserveReleaseOp, ResvID: 7, Resource: "ghost"}, 3); !IsNotRoutable(err) {
		t.Fatalf("ghost target error = %v, want routing miss", err)
	}
}

func TestShopSingleResource(t *testing.T) {
	e := pace.NewEngine()
	head, mid, _ := resvTrio(t, e)
	// Book the whole head and mid resources over the requested window so
	// shopping must settle on the leaf.
	for _, a := range []*Agent{head, mid} {
		if err := a.Local().HoldReservation(99, "x@g", 0b1111, 0, 1e6, 0, 1e9); err != nil {
			t.Fatal(err)
		}
	}
	held, err := head.ShopReservation(ReservationSpec{
		ResvID: 1, Holder: "u@g", Nodes: 2, Parts: 1,
		Earliest: 100, Duration: 50, TTL: 30, MaxSlip: -1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(held.Parts) != 1 || held.Parts[0].Resource != "leaf" || held.Start != 100 || held.End != 150 {
		t.Fatalf("held = %+v, want leaf at [100,150)", held)
	}
}

func TestShopCoAllocationCommonWindow(t *testing.T) {
	e := pace.NewEngine()
	head, mid, leaf := resvTrio(t, e)
	// Stagger availability: mid is booked until 300, leaf until 500, so a
	// three-part co-allocation's common window cannot start before 500.
	if err := mid.Local().HoldReservation(90, "x@g", 0b1111, 0, 300, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	if err := leaf.Local().HoldReservation(91, "x@g", 0b1111, 0, 500, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	held, err := head.ShopReservation(ReservationSpec{
		ResvID: 2, Holder: "u@g", Nodes: 2, Parts: 3,
		Earliest: 0, Duration: 50, TTL: 30, MaxSlip: -1,
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if held.Start != 500 || held.End != 550 || len(held.Parts) != 3 {
		t.Fatalf("held = %+v, want 3 parts at [500,550)", held)
	}
	seen := map[string]bool{}
	for _, p := range held.Parts {
		seen[p.Resource] = true
	}
	if !seen["head"] || !seen["mid"] || !seen["leaf"] {
		t.Fatalf("parts = %+v, want all three resources", held.Parts)
	}
	// Every part is held on its book for the common window.
	for _, a := range []*Agent{head, mid, leaf} {
		b, ok := a.Local().Book().Get(2)
		if !ok || b.State != reserve.Held || b.Start != 500 || b.End != 550 {
			t.Fatalf("%s booking = %+v ok=%v", a.Name(), b, ok)
		}
	}
}

func TestShopMaxSlipRejectsAndHoldsNothing(t *testing.T) {
	e := pace.NewEngine()
	head, mid, leaf := resvTrio(t, e)
	if err := leaf.Local().HoldReservation(91, "x@g", 0b1111, 0, 500, 0, 1e9); err != nil {
		t.Fatal(err)
	}
	_, err := head.ShopReservation(ReservationSpec{
		ResvID: 3, Holder: "u@g", Nodes: 2, Parts: 3,
		Earliest: 0, Duration: 50, TTL: 30, MaxSlip: 100,
	}, 0)
	if err == nil || !strings.Contains(err.Error(), "slip") {
		t.Fatalf("err = %v, want slip rejection", err)
	}
	for _, a := range []*Agent{head, mid} {
		if bk := a.Local().Book(); bk != nil {
			if _, ok := bk.Get(3); ok {
				t.Fatalf("%s holds a booking after a rejected shop", a.Name())
			}
		}
	}
}

func TestShopTooFewResourcesForParts(t *testing.T) {
	e := pace.NewEngine()
	head, _, _ := resvTrio(t, e)
	_, err := head.ShopReservation(ReservationSpec{
		ResvID: 4, Holder: "u@g", Nodes: 2, Parts: 4,
		Earliest: 0, Duration: 50, TTL: 30, MaxSlip: -1,
	}, 0)
	if err == nil {
		t.Fatal("4-part co-allocation on a 3-resource grid succeeded")
	}
}
