package agent

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/pace"
	"repro/internal/scheduler"
)

// ReserveAction selects which phase of the reservation protocol a
// ReserveOp carries.
type ReserveAction int

// Reservation protocol phases.
const (
	// ReserveQuoteOp asks for the earliest window a resource (or, with no
	// target resource, every resource reachable through the hierarchy)
	// can guarantee. Quoting changes no state.
	ReserveQuoteOp ReserveAction = iota
	// ReserveHoldOp places phase one of the two-phase commit on the
	// target resource: the window is blocked under a TTL.
	ReserveHoldOp
	// ReserveConfirmOp settles a hold as a confirmed, guaranteed-start
	// task on the target resource.
	ReserveConfirmOp
	// ReserveReleaseOp cancels a held or confirmed booking.
	ReserveReleaseOp
)

// String implements fmt.Stringer.
func (ra ReserveAction) String() string {
	switch ra {
	case ReserveQuoteOp:
		return "quote"
	case ReserveHoldOp:
		return "hold"
	case ReserveConfirmOp:
		return "confirm"
	case ReserveReleaseOp:
		return "release"
	}
	return fmt.Sprintf("action(%d)", int(ra))
}

// ReserveOp is a reservation protocol message travelling through the
// hierarchy — the reservation analogue of Request. Ops addressed to a
// named Resource are routed through the agent graph like discovery
// traffic; a quote op with no target floods the reachable hierarchy and
// aggregates every resource's offer.
type ReserveOp struct {
	Action   ReserveAction
	ResvID   uint64 // grid-wide reservation identity (the booking ID on every part)
	Holder   string // requester identity (contact email)
	Resource string // routing target; empty on a flood quote

	// Quote parameters.
	Nodes    int
	Earliest float64
	Duration float64

	// Hold parameters (the window being committed).
	Mask  uint64
	Start float64
	End   float64
	TTL   float64

	// Confirm parameters.
	ReqID uint64
	App   *pace.AppModel

	Visited []string
}

func (op *ReserveOp) visited(name string) bool {
	for _, v := range op.Visited {
		if v == name {
			return true
		}
	}
	return false
}

// ReserveReply answers a ReserveOp: the aggregated quotes for a quote
// op, the scheduler-local task ID for a confirm.
type ReserveReply struct {
	Quotes []scheduler.ReserveQuote
	TaskID int
}

// ReservePeer is implemented by peers that speak the reservation
// protocol. In-process agents implement it directly; remote peers carry
// the op as a reserve message over the wire. Peers that do not implement
// it are simply not shopped — mixed deployments degrade to the
// reservation-capable subset.
type ReservePeer interface {
	HandleReserve(op ReserveOp, now float64) (ReserveReply, error)
}

// errNotRoutableText is matched by IsNotRoutable across the wire, where
// error identity is lost to serialisation.
const errNotRoutableText = "reservation target not reachable"

// ErrNotRoutable reports that a targeted reservation op found no path to
// its resource: every reachable direction was searched without finding
// it. The target refusing the op is a different (and propagated) error.
var ErrNotRoutable = errors.New("agent: " + errNotRoutableText)

// IsNotRoutable reports whether err is a routing miss, surviving the
// round-trip through wire serialisation (which flattens errors to text).
func IsNotRoutable(err error) bool {
	return err != nil && (errors.Is(err, ErrNotRoutable) || strings.Contains(err.Error(), errNotRoutableText))
}

// HandleReserve implements ReservePeer: execute the op locally if this
// agent is the target, otherwise route it through the hierarchy. A
// flood quote aggregates the local quote with every reachable
// neighbour's, deduplicated by resource and sorted by (start, resource)
// — price-ordered for the shopper, earliest guaranteed start first.
func (a *Agent) HandleReserve(op ReserveOp, now float64) (ReserveReply, error) {
	visited := make([]string, 0, len(op.Visited)+1)
	visited = append(visited, op.Visited...)
	visited = append(visited, a.name)
	op.Visited = visited

	if op.Action == ReserveQuoteOp && op.Resource == "" {
		return a.floodQuote(op, now), nil
	}
	if op.Resource == a.name || op.Resource == "" {
		return a.applyReserve(op, now)
	}
	for _, n := range a.neighbours() {
		rp, ok := n.(ReservePeer)
		if !ok || op.visited(n.PeerName()) || a.PeerTripped(n.PeerName()) {
			continue
		}
		if err := a.gateErr(n.PeerName(), now); err != nil {
			a.RecordPeerFailure(n.PeerName())
			continue
		}
		r, err := rp.HandleReserve(op, now)
		if err == nil {
			a.RecordPeerSuccess(n.PeerName())
			return r, nil
		}
		if IsNotRoutable(err) {
			// The peer answered — the target just isn't in that direction.
			a.RecordPeerSuccess(n.PeerName())
			continue
		}
		// The op reached its target and was refused (overlap, expired
		// hold, …): that is the protocol answer, not a routing failure.
		return ReserveReply{}, err
	}
	return ReserveReply{}, fmt.Errorf("%w: no path from %s to %s for %s %d",
		ErrNotRoutable, a.name, op.Resource, op.Action, op.ResvID)
}

// floodQuote gathers this resource's quote and every reachable
// neighbour's, the reservation analogue of discovery's advertisement
// walk. Resources that cannot satisfy the request (too few nodes up)
// simply contribute no quote.
func (a *Agent) floodQuote(op ReserveOp, now float64) ReserveReply {
	var reply ReserveReply
	if q, err := a.local.QuoteReservation(op.Nodes, op.Earliest, op.Duration, now); err == nil {
		reply.Quotes = append(reply.Quotes, q)
	}
	for _, n := range a.neighbours() {
		rp, ok := n.(ReservePeer)
		if !ok || op.visited(n.PeerName()) || a.PeerTripped(n.PeerName()) {
			continue
		}
		if err := a.gateErr(n.PeerName(), now); err != nil {
			a.RecordPeerFailure(n.PeerName())
			continue
		}
		r, err := rp.HandleReserve(op, now)
		if err != nil {
			a.RecordPeerFailure(n.PeerName())
			continue
		}
		a.RecordPeerSuccess(n.PeerName())
		reply.Quotes = append(reply.Quotes, r.Quotes...)
	}
	seen := map[string]bool{}
	uniq := reply.Quotes[:0]
	for _, q := range reply.Quotes {
		if !seen[q.Resource] {
			seen[q.Resource] = true
			uniq = append(uniq, q)
		}
	}
	reply.Quotes = uniq
	sort.Slice(reply.Quotes, func(i, j int) bool {
		if reply.Quotes[i].Start != reply.Quotes[j].Start {
			return reply.Quotes[i].Start < reply.Quotes[j].Start
		}
		return reply.Quotes[i].Resource < reply.Quotes[j].Resource
	})
	return reply
}

// ApplyReserve executes the op against this agent's own scheduler with
// no routing — the networked node drives routing itself (remote calls
// must happen outside its lock) and applies the local share through
// here.
func (a *Agent) ApplyReserve(op ReserveOp, now float64) (ReserveReply, error) {
	return a.applyReserve(op, now)
}

// applyReserve executes the op against this agent's own scheduler.
func (a *Agent) applyReserve(op ReserveOp, now float64) (ReserveReply, error) {
	switch op.Action {
	case ReserveQuoteOp:
		q, err := a.local.QuoteReservation(op.Nodes, op.Earliest, op.Duration, now)
		if err != nil {
			return ReserveReply{}, err
		}
		return ReserveReply{Quotes: []scheduler.ReserveQuote{q}}, nil
	case ReserveHoldOp:
		return ReserveReply{}, a.local.HoldReservation(op.ResvID, op.Holder, op.Mask, op.Start, op.End, now, op.TTL)
	case ReserveConfirmOp:
		id, err := a.local.ConfirmReservation(op.ResvID, op.ReqID, op.App, now)
		if err != nil {
			return ReserveReply{}, err
		}
		return ReserveReply{TaskID: id}, nil
	case ReserveReleaseOp:
		return ReserveReply{}, a.local.ReleaseReservation(op.ResvID, now)
	}
	return ReserveReply{}, fmt.Errorf("agent: %s: unknown reserve action %d", a.name, int(op.Action))
}

// ReservationSpec is what a client asks to reserve: Parts node sets of
// Nodes nodes each, on distinct resources, all over one common window of
// Duration seconds starting no earlier than Earliest. Parts == 1 (or 0)
// is a plain single-resource reservation; Parts > 1 is co-allocation.
// MaxSlip bounds how far past Earliest the quoted common start may slip
// before the request is rejected instead (negative means unbounded).
type ReservationSpec struct {
	ResvID   uint64
	Holder   string
	Nodes    int
	Parts    int
	Earliest float64
	Duration float64
	TTL      float64
	MaxSlip  float64
}

// HeldPart is one resource's share of a held reservation.
type HeldPart struct {
	Resource string
	Mask     uint64
}

// HeldReservation is the outcome of successful shopping: every part is
// held (phase one) on its resource for the same window, awaiting
// confirm or release. The booking ID on each resource is the
// reservation's ResvID.
type HeldReservation struct {
	ID     uint64
	Holder string
	Start  float64
	End    float64
	Parts  []HeldPart
}

// maxCoallocRounds bounds the co-allocation fixed point. The common
// start only ever increases and each round is driven by a concrete
// quote, so rounds ~ distinct contention edges; 32 is far beyond any
// realistic chain.
const maxCoallocRounds = 32

// ShopReservation runs the full shopping protocol from this agent:
// flood-quote the hierarchy, choose the cheapest (earliest-starting)
// Parts resources, iterate targeted re-quotes to a common window all
// parts can guarantee, then hold every part. Either every part ends
// held — the returned reservation is ready to confirm — or nothing is
// held and an error explains why (no capacity, or the common start
// slipped past MaxSlip). Holding is atomic across parts: any hold
// failure releases the parts already held before returning.
func (a *Agent) ShopReservation(spec ReservationSpec, now float64) (HeldReservation, error) {
	parts := spec.Parts
	if parts < 1 {
		parts = 1
	}
	rep, err := a.HandleReserve(ReserveOp{
		Action:   ReserveQuoteOp,
		Nodes:    spec.Nodes,
		Earliest: spec.Earliest,
		Duration: spec.Duration,
	}, now)
	if err != nil {
		return HeldReservation{}, err
	}
	if len(rep.Quotes) < parts {
		return HeldReservation{}, fmt.Errorf("agent: %s: %d of %d co-allocation parts quotable for %d×%d nodes",
			a.name, len(rep.Quotes), parts, parts, spec.Nodes)
	}
	resources := make([]string, 0, len(rep.Quotes))
	for _, q := range rep.Quotes {
		resources = append(resources, q.Resource)
	}

	// Fixed point on the common start: quote every candidate resource at
	// earliest=T, take the Parts earliest offers, and raise T to the
	// latest of them; stable when all chosen parts quote exactly T. With
	// one part this converges immediately (the first quote is feasible).
	chosen := rep.Quotes[:parts]
	T := commonStart(chosen)
	for round := 0; ; round++ {
		if round >= maxCoallocRounds {
			return HeldReservation{}, fmt.Errorf("agent: %s: co-allocation for reservation %d did not converge in %d rounds",
				a.name, spec.ResvID, maxCoallocRounds)
		}
		requotes := make([]scheduler.ReserveQuote, 0, len(resources))
		for _, r := range resources {
			qr, err := a.HandleReserve(ReserveOp{
				Action:   ReserveQuoteOp,
				Resource: r,
				Nodes:    spec.Nodes,
				Earliest: T,
				Duration: spec.Duration,
			}, now)
			if err != nil || len(qr.Quotes) != 1 {
				continue
			}
			requotes = append(requotes, qr.Quotes[0])
		}
		if len(requotes) < parts {
			return HeldReservation{}, fmt.Errorf("agent: %s: only %d of %d co-allocation parts still quotable at %g",
				a.name, len(requotes), parts, T)
		}
		sort.Slice(requotes, func(i, j int) bool {
			if requotes[i].Start != requotes[j].Start {
				return requotes[i].Start < requotes[j].Start
			}
			return requotes[i].Resource < requotes[j].Resource
		})
		chosen = requotes[:parts]
		if latest := commonStart(chosen); latest > T {
			T = latest
			continue
		}
		break
	}
	if spec.MaxSlip >= 0 && T > spec.Earliest+spec.MaxSlip {
		return HeldReservation{}, fmt.Errorf("agent: %s: reservation %d start %g slips %g past requested %g (max slip %g)",
			a.name, spec.ResvID, T, T-spec.Earliest, spec.Earliest, spec.MaxSlip)
	}

	held := HeldReservation{ID: spec.ResvID, Holder: spec.Holder, Start: T, End: T + spec.Duration}
	for _, q := range chosen {
		_, err := a.HandleReserve(ReserveOp{
			Action:   ReserveHoldOp,
			ResvID:   spec.ResvID,
			Holder:   spec.Holder,
			Resource: q.Resource,
			Mask:     q.Mask,
			Start:    T,
			End:      T + spec.Duration,
			TTL:      spec.TTL,
		}, now)
		if err != nil {
			// All-or-nothing: a part that cannot be held voids the others.
			for _, h := range held.Parts {
				_ = a.ReleasePart(h.Resource, spec.ResvID, now)
			}
			return HeldReservation{}, fmt.Errorf("agent: %s: hold of reservation %d part on %s: %w",
				a.name, spec.ResvID, q.Resource, err)
		}
		held.Parts = append(held.Parts, HeldPart{Resource: q.Resource, Mask: q.Mask})
	}
	return held, nil
}

func commonStart(quotes []scheduler.ReserveQuote) float64 {
	t := 0.0
	for i, q := range quotes {
		if i == 0 || q.Start > t {
			t = q.Start
		}
	}
	return t
}

// ConfirmPart settles one held part as a confirmed, guaranteed-start
// task, returning the scheduler-local task ID on the part's resource.
func (a *Agent) ConfirmPart(resource string, resvID, reqID uint64, app *pace.AppModel, now float64) (int, error) {
	rep, err := a.HandleReserve(ReserveOp{
		Action:   ReserveConfirmOp,
		ResvID:   resvID,
		Resource: resource,
		ReqID:    reqID,
		App:      app,
	}, now)
	if err != nil {
		return 0, err
	}
	return rep.TaskID, nil
}

// ReleasePart cancels one held or confirmed part.
func (a *Agent) ReleasePart(resource string, resvID uint64, now float64) error {
	_, err := a.HandleReserve(ReserveOp{
		Action:   ReserveReleaseOp,
		ResvID:   resvID,
		Resource: resource,
	}, now)
	return err
}
