package agent

import (
	"errors"
	"testing"

	"repro/internal/pace"
)

// testGate blocks exchanges with agents listed as down — a miniature of
// the fault registry.
type testGate struct{ down map[string]bool }

func (g *testGate) ExchangeErr(from, to string, now float64) error {
	if g.down[from] || g.down[to] {
		return errors.New("gate: agent down")
	}
	return nil
}

// trio builds a head (slow local resource) with two lower neighbours,
// one fast and one middling, all sharing a gate.
func trio(t *testing.T, g Gate) (head, fast, alt *Agent) {
	t.Helper()
	e := pace.NewEngine()
	head = newAgent(t, "head", pace.SunSPARCstation2, 16, e)
	fast = newAgent(t, "fast", pace.SGIOrigin2000, 16, e)
	alt = newAgent(t, "alt", pace.SunUltra10, 16, e)
	if err := Link(head, fast); err != nil {
		t.Fatal(err)
	}
	if err := Link(head, alt); err != nil {
		t.Fatal(err)
	}
	for _, a := range []*Agent{head, fast, alt} {
		a.SetGate(g)
		a.Pull(0)
	}
	return head, fast, alt
}

func TestCircuitBreakerDivertsDiscoveryAndProbeRestores(t *testing.T) {
	gate := &testGate{down: map[string]bool{}}
	head, _, _ := trio(t, gate)

	req := func(now float64) Request {
		// Advance the local clock as a live grid would, so the local η
		// is measured from now (sweep3d needs 24 s locally, 4 s on the
		// fast neighbour: only the neighbour meets a 10 s deadline).
		head.Local().AdvanceTo(now)
		return Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: now + 10}
	}

	// Healthy grid: the fast neighbour is the best match.
	d := head.Decide(req(0), 0)
	if d.Kind != DecideForward || d.Peer.PeerName() != "fast" {
		t.Fatalf("healthy decision = %+v, want forward to fast", d)
	}

	// Kill the fast neighbour. Each periodic pull is a failed exchange;
	// after FailureThreshold consecutive failures the circuit trips.
	gate.down["fast"] = true
	for i := 1; i <= DefaultFailureThreshold; i++ {
		if head.PeerTripped("fast") {
			t.Fatalf("tripped after only %d failures", i-1)
		}
		head.Pull(float64(10 * i))
	}
	if !head.PeerTripped("fast") {
		t.Fatalf("breaker not tripped after %d failed pulls", DefaultFailureThreshold)
	}
	if got := head.Stats().FailedPulls; got < DefaultFailureThreshold {
		t.Fatalf("FailedPulls = %d, want >= %d", got, DefaultFailureThreshold)
	}

	// Discovery must now divert around the dead peer, even though its
	// (stale) advertisement still looks perfect.
	d = head.Decide(req(30), 30)
	if d.Kind == DecideForward && d.Peer.PeerName() == "fast" {
		t.Fatalf("discovery still targets the tripped peer: %+v", d)
	}

	// Revive: the next pull doubles as the probe and closes the breaker.
	delete(gate.down, "fast")
	head.Pull(40)
	if head.PeerTripped("fast") {
		t.Fatal("breaker still open after a successful probe")
	}
	d = head.Decide(req(40), 40)
	if d.Kind != DecideForward || d.Peer.PeerName() != "fast" {
		t.Fatalf("recovered decision = %+v, want forward to fast", d)
	}
}

func TestTrippedUpperFallsBackInsteadOfEscalating(t *testing.T) {
	e := pace.NewEngine()
	head := newAgent(t, "head", pace.SGIOrigin2000, 16, e)
	leaf := newAgent(t, "leaf", pace.SunSPARCstation2, 16, e)
	if err := Link(head, leaf); err != nil {
		t.Fatal(err)
	}
	// No Pull: the leaf has no advertisements, so without failures it
	// would escalate (see TestDecideEscalatePath).
	for i := 0; i < DefaultFailureThreshold; i++ {
		leaf.RecordPeerFailure("head")
	}
	d := leaf.Decide(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 10}, 0)
	if d.Kind == DecideEscalate {
		t.Fatalf("escalated into a tripped upper: %+v", d)
	}
	if d.Kind != DecideFallbackLocal {
		t.Fatalf("decision = %+v, want local fallback", d)
	}
}

func TestHandleRequestSurvivesGateBlockedForward(t *testing.T) {
	gate := &testGate{down: map[string]bool{}}
	head, _, _ := trio(t, gate)

	// The gate kills the chosen neighbour between decision and dispatch:
	// the request must re-enter the fallback path, not be lost.
	gate.down["fast"] = true
	d, err := head.HandleRequest(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 10}, 0)
	if err != nil {
		t.Fatalf("request lost: %v", err)
	}
	if d.Resource == "fast" {
		t.Fatalf("dispatched to the dead peer: %+v", d)
	}
	// One failure recorded against the dead peer, none tripped yet.
	if head.PeerTripped("fast") {
		t.Fatal("a single failure must not trip the breaker")
	}
}

func TestStaleAdvertisementExpires(t *testing.T) {
	gate := &testGate{down: map[string]bool{}}
	head, _, _ := trio(t, gate)
	head.AdvertTTL = 15

	// Fresh advert (pulled at 0) within TTL: forward to fast.
	d := head.Decide(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 22}, 12)
	if d.Kind != DecideForward || d.Peer.PeerName() != "fast" {
		t.Fatalf("fresh decision = %+v, want forward to fast", d)
	}
	// Past the TTL the advert no longer attracts dispatches.
	d = head.Decide(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 21}, 16)
	if d.Kind == DecideForward {
		t.Fatalf("expired advertisement still attracting dispatches: %+v", d)
	}
	// A new pull refreshes the entry.
	head.Pull(16)
	d = head.Decide(Request{App: appOf(t, "sweep3d"), Env: "test", Deadline: 22}, 17)
	if d.Kind != DecideForward || d.Peer.PeerName() != "fast" {
		t.Fatalf("refreshed decision = %+v, want forward to fast", d)
	}
}

func TestPublisherExposesFaultCounters(t *testing.T) {
	gate := &testGate{down: map[string]bool{"fast": true}}
	head, _, _ := trio(t, gate) // trio pulls once with fast already down
	head.CountRedispatch()
	si, err := head.PullService()
	if err != nil {
		t.Fatal(err)
	}
	if si.FailedPulls != head.Stats().FailedPulls || si.FailedPulls == 0 {
		t.Fatalf("ServiceInfo.FailedPulls = %d, stats = %d", si.FailedPulls, head.Stats().FailedPulls)
	}
	if si.Redispatches != 1 {
		t.Fatalf("ServiceInfo.Redispatches = %d, want 1", si.Redispatches)
	}
}
