package agent

import (
	"sync"
	"testing"

	"repro/internal/pace"
	"repro/internal/telemetry"
)

// TestStatsConcurrentScrape drives requests through a two-agent
// hierarchy on one goroutine while others scrape Stats() and a
// telemetry registry — the monitoring pattern of the networked node.
// Before the counters moved onto atomics this was a data race (plain
// ints mutated by the driver, read by value from the scraper); under
// `go test -race` this test pins the fix.
func TestStatsConcurrentScrape(t *testing.T) {
	engine := pace.NewEngine()
	head, child := pair(t, engine)

	reg := telemetry.NewRegistry()
	head.RegisterMetrics(reg)
	child.RegisterMetrics(reg)

	app := appOf(t, "sweep3d")
	const requests = 200

	var wg sync.WaitGroup
	done := make(chan struct{})

	// Driver: the single goroutine that owns the agents, as in every
	// deployment of this package.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		now := 0.0
		for i := 0; i < requests; i++ {
			req := Request{ReqID: uint64(i + 1), App: app, Env: "test", Deadline: now + 60}
			if _, err := head.HandleRequest(req, now); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			if i%20 == 0 {
				head.Pull(now)
				child.Pull(now)
			}
			now += 0.5
		}
	}()

	// Scrapers: Stats() snapshots and registry snapshots, mid-run.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = head.Stats()
				_ = child.Stats()
				_ = reg.Snapshot()
			}
		}()
	}
	wg.Wait()

	st := head.Stats()
	if st.Received != requests {
		t.Fatalf("head received %d, want %d", st.Received, requests)
	}
	total := head.Stats().LocalAccept + child.Stats().LocalAccept
	if total != requests {
		t.Fatalf("accepted %d across agents, want %d", total, requests)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[`agent_requests_received_total{resource="fast"}`]; got != requests {
		t.Fatalf("registry sees %d received, want %d", got, requests)
	}
}
