package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/pace"
)

// PresetFig7 names the paper's twelve-agent grid.
const PresetFig7 = "fig7"

// Fig7Resources returns the Fig. 7 grid: twelve agents S1..S12, each a
// heterogeneous resource of sixteen homogeneous nodes, ranging from SGI
// Origin 2000 (most powerful) down to Sun SPARCstation 2. The paper
// draws the hierarchy without naming edges; the tree used here — S1 at
// the head, S2/S3/S4 below it, and the remaining agents grouped under
// those — follows the figure's layout and is recorded in DESIGN.md as an
// assumption. (experiment.CaseStudyResources delegates here.)
func Fig7Resources() []core.ResourceSpec {
	return []core.ResourceSpec{
		{Name: "S1", Hardware: "SGIOrigin2000", Nodes: 16, Parent: ""},
		{Name: "S2", Hardware: "SGIOrigin2000", Nodes: 16, Parent: "S1"},
		{Name: "S3", Hardware: "SunUltra10", Nodes: 16, Parent: "S1"},
		{Name: "S4", Hardware: "SunUltra10", Nodes: 16, Parent: "S1"},
		{Name: "S5", Hardware: "SunUltra5", Nodes: 16, Parent: "S2"},
		{Name: "S6", Hardware: "SunUltra5", Nodes: 16, Parent: "S2"},
		{Name: "S7", Hardware: "SunUltra5", Nodes: 16, Parent: "S3"},
		{Name: "S8", Hardware: "SunUltra1", Nodes: 16, Parent: "S3"},
		{Name: "S9", Hardware: "SunUltra1", Nodes: 16, Parent: "S4"},
		{Name: "S10", Hardware: "SunUltra1", Nodes: 16, Parent: "S4"},
		{Name: "S11", Hardware: "SunSPARCstation2", Nodes: 16, Parent: "S5"},
		{Name: "S12", Hardware: "SunSPARCstation2", Nodes: 16, Parent: "S6"},
	}
}

// Build materialises the topology as resource specs. Generated
// hierarchies name agents A1..AN and arrange them as a Branching-ary
// tree (A1 the head), cycling the hardware and node-count mixes over the
// agents — the Fig. 7 pattern of fast resources near the head and slower
// ones toward the leaves, generalised to arbitrary size.
func (t TopologySpec) Build() ([]core.ResourceSpec, error) {
	if t.Preset != "" {
		if t.Agents != 0 || t.Branching != 0 || t.Nodes != 0 || len(t.NodeMix) != 0 || len(t.Hardware) != 0 {
			return nil, fmt.Errorf("scenario: topology preset %q excludes the generated-topology fields", t.Preset)
		}
		if t.Preset != PresetFig7 {
			return nil, fmt.Errorf("scenario: unknown topology preset %q (want %q)", t.Preset, PresetFig7)
		}
		return Fig7Resources(), nil
	}
	if t.Agents < 1 {
		return nil, fmt.Errorf("scenario: topology needs a preset or a positive agent count (got %d)", t.Agents)
	}
	branching := t.Branching
	if branching == 0 {
		branching = 3
	}
	if branching < 1 {
		return nil, fmt.Errorf("scenario: branching %d must be positive", t.Branching)
	}
	nodeMix := t.NodeMix
	if len(nodeMix) == 0 {
		nodes := t.Nodes
		if nodes == 0 {
			nodes = 16
		}
		nodeMix = []int{nodes}
	}
	for _, n := range nodeMix {
		if n < 1 || n > 64 {
			return nil, fmt.Errorf("scenario: node count %d outside [1, 64] (node masks are 64-bit)", n)
		}
	}
	hardware := t.Hardware
	if len(hardware) == 0 {
		hardware = pace.HardwareNames()
	}
	for _, hw := range hardware {
		if _, ok := pace.LookupHardware(hw); !ok {
			return nil, fmt.Errorf("scenario: unknown hardware model %q (known: %v)", hw, pace.HardwareNames())
		}
	}
	specs := make([]core.ResourceSpec, t.Agents)
	for i := range specs {
		specs[i] = core.ResourceSpec{
			Name:     fmt.Sprintf("A%d", i+1),
			Hardware: hardware[i%len(hardware)],
			Nodes:    nodeMix[i%len(nodeMix)],
		}
		if i > 0 {
			specs[i].Parent = fmt.Sprintf("A%d", (i-1)/branching+1)
		}
	}
	return specs, nil
}

// AgentNames returns the topology's agent names in declaration order.
func (t TopologySpec) AgentNames() ([]string, error) {
	specs, err := t.Build()
	if err != nil {
		return nil, err
	}
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out, nil
}
