// Package scenario is the declarative experiment layer over the grid:
// a Spec names a topology (the Fig. 7 grid or a generated hierarchy), an
// arrival process, an application mix, a scheduling policy and an
// optional fault plan, and the package runs it — reproducibly — into a
// single Result, a sweep across one axis, or a saturation search for the
// arrival rate a topology can sustain. It composes what the earlier
// layers provide (core grids, GA/FIFO policies, agent discovery, fault
// injection, lifecycle auditing) without adding mechanism of its own:
// every run is an ordinary core.Grid run, audited by internal/audit.
//
// Specs have a JSON file format (examples under examples/scenarios/) so
// experiments can be described, versioned and swept without writing Go.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/ga"
	"repro/internal/membership"
	"repro/internal/workload"
)

// Spec is one reproducible experiment: everything needed to build a
// grid, generate a workload and run it is derived from this value alone.
type Spec struct {
	Name string `json:"name,omitempty"`
	Seed uint64 `json:"seed"`

	Topology TopologySpec `json:"topology"`
	Arrivals ArrivalSpec  `json:"arrivals"`

	// AppWeights biases the Table 1 application mix (empty = uniform
	// over all seven, the paper's behaviour). DeadlineScale multiplies
	// every drawn deadline (0 = 1 = the paper's requirement domains).
	AppWeights    map[string]float64 `json:"app_weights,omitempty"`
	DeadlineScale float64            `json:"deadline_scale,omitempty"`

	// Policy is the local scheduling algorithm (fifo, fifo-fast, ga, sa,
	// tabu; empty = ga). UseAgents enables agent-based service
	// discovery; nil defaults to true — the paper's experiment 3 is the
	// configuration a scenario usually wants to stress.
	Policy    string `json:"policy,omitempty"`
	UseAgents *bool  `json:"use_agents,omitempty"`

	GA           *GASpec          `json:"ga,omitempty"`
	Faults       *FaultSpec       `json:"faults,omitempty"`
	Migration    *MigrationSpec   `json:"migration,omitempty"`
	Reservations *ReservationSpec `json:"reservations,omitempty"`
	Churn        *ChurnSpec       `json:"churn,omitempty"`
}

// TopologySpec describes the grid. Either a named preset or a generated
// hierarchy: Agents resources arranged as a Branching-ary tree, with
// hardware models and node counts cycling through the mix lists.
type TopologySpec struct {
	// Preset selects a fixed topology; "fig7" is the paper's grid.
	// When set, the generated-topology fields must be zero.
	Preset string `json:"preset,omitempty"`

	Agents    int `json:"agents,omitempty"`
	Branching int `json:"branching,omitempty"` // fan-out; default 3
	// Nodes is the homogeneous per-resource node count (default 16, the
	// case study's). NodeMix, when set, cycles per-resource counts
	// instead — mixed cluster sizes.
	Nodes   int   `json:"nodes,omitempty"`
	NodeMix []int `json:"node_mix,omitempty"`
	// Hardware cycles the listed pace hardware models over the agents;
	// empty uses every built-in model from fastest to slowest.
	Hardware []string `json:"hardware,omitempty"`
}

// ArrivalSpec selects and parameterises the arrival process.
type ArrivalSpec struct {
	// Process is one of "fixed", "poisson", "bursty", "flashcrowd",
	// "trace". Empty means fixed.
	Process string `json:"process,omitempty"`
	// Count bounds the request stream (a trace may end sooner).
	Count int `json:"count"`

	Interval float64 `json:"interval,omitempty"` // fixed: spacing in seconds
	Rate     float64 `json:"rate,omitempty"`     // poisson: arrivals per second

	OnRate  float64 `json:"on_rate,omitempty"` // bursty
	OffRate float64 `json:"off_rate,omitempty"`
	OnMean  float64 `json:"on_mean,omitempty"`
	OffMean float64 `json:"off_mean,omitempty"`

	BaseRate     float64 `json:"base_rate,omitempty"` // flashcrowd
	PeakRate     float64 `json:"peak_rate,omitempty"`
	RampStart    float64 `json:"ramp_start,omitempty"`
	RampDuration float64 `json:"ramp_duration,omitempty"`
	Hold         float64 `json:"hold,omitempty"`

	// TraceFile names a CSV of arrival times (one per line, seconds,
	// non-decreasing; lines starting with '#' and a leading header are
	// skipped). Times carries the same inline — Load fills it from
	// TraceFile, resolved relative to the spec file.
	TraceFile string    `json:"trace_file,omitempty"`
	Times     []float64 `json:"times,omitempty"`
}

// GASpec overrides the GA hyper-parameters a scenario cares about; zero
// fields keep the case-study defaults.
type GASpec struct {
	PopulationSize    int `json:"population_size,omitempty"`
	MaxGenerations    int `json:"max_generations,omitempty"`
	ConvergenceWindow int `json:"convergence_window,omitempty"`
	Workers           int `json:"workers,omitempty"`
}

// FaultSpec is the JSON shape of a fault.Plan.
type FaultSpec struct {
	Seed   uint64       `json:"seed,omitempty"`
	Events []FaultEvent `json:"events"`
}

// FaultEvent is the JSON shape of one fault.Event.
type FaultEvent struct {
	At     float64 `json:"at"`
	Kind   string  `json:"kind"`
	Agent  string  `json:"agent,omitempty"`
	A      string  `json:"a,omitempty"`
	B      string  `json:"b,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	Factor float64 `json:"factor,omitempty"` // degrade: execution-time multiplier
}

// MigrationSpec is the JSON shape of core.MigrationPolicy: drift-driven
// rescheduling of queued work off resources whose observed performance
// has fallen behind their PACE predictions. Zero fields keep the core
// defaults.
type MigrationSpec struct {
	Enabled        bool    `json:"enabled"`
	CheckPeriod    float64 `json:"check_period,omitempty"`
	DriftThreshold float64 `json:"drift_threshold,omitempty"`
	Window         int     `json:"window,omitempty"`
	Cooldown       float64 `json:"cooldown,omitempty"`
	MaxPerRound    int     `json:"max_per_round,omitempty"`
}

// ReservationSpec mixes advance reservations into the workload: each
// generated request is diverted, with probability Share, from the
// best-effort submit path to core.SubmitReservationAt — it asks for a
// window of Duration seconds on Nodes nodes across Parts resources,
// starting Lead seconds after it arrives. The diversion draws from its
// own RNG stream, so the best-effort requests that remain are the same
// requests a share-0 run submits, at the same times.
type ReservationSpec struct {
	// Share is the fraction of requests converted to reservations, in
	// [0,1]. Zero disables the path entirely (byte-identical runs).
	Share float64 `json:"share"`

	Lead     float64 `json:"lead,omitempty"`     // start offset, seconds (default 300)
	Duration float64 `json:"duration,omitempty"` // booked window length, seconds (default 120)
	Nodes    int     `json:"nodes,omitempty"`    // nodes per part (default 2)
	Parts    int     `json:"parts,omitempty"`    // co-allocated resources (default 1)

	HoldTTL float64 `json:"hold_ttl,omitempty"` // phase-one hold TTL, seconds
	// MaxSlip bounds how far past the requested start the granted window
	// may slip before admission is refused; 0 = unbounded.
	MaxSlip float64 `json:"max_slip,omitempty"`
}

// ChurnSpec scripts dynamic membership: agents joining and gracefully
// leaving the hierarchy at fixed virtual times, plus an optional
// load-driven rebalancer re-homing subtrees when the tree goes lopsided.
// It composes with fault plans (crash/partition churn) and any arrival
// process — a flash crowd over a churning tree is the stress case the
// static paper topology cannot express.
type ChurnSpec struct {
	Joins     []ChurnJoin    `json:"joins,omitempty"`
	Leaves    []ChurnLeave   `json:"leaves,omitempty"`
	Rebalance *RebalanceSpec `json:"rebalance,omitempty"`
}

// ChurnJoin is the JSON shape of one membership.Join.
type ChurnJoin struct {
	Time         float64  `json:"time"`
	Name         string   `json:"name"`
	Hardware     string   `json:"hardware"`
	Nodes        int      `json:"nodes"`
	Parent       string   `json:"parent"`
	Environments []string `json:"environments,omitempty"`
}

// ChurnLeave is the JSON shape of one membership.Leave.
type ChurnLeave struct {
	Time float64 `json:"time"`
	Name string  `json:"name"`
}

// RebalanceSpec is the JSON shape of membership.Policy; zero fields keep
// the membership defaults.
type RebalanceSpec struct {
	Enabled     bool    `json:"enabled"`
	CheckPeriod float64 `json:"check_period,omitempty"`
	Imbalance   float64 `json:"imbalance,omitempty"`
	Window      int     `json:"window,omitempty"`
	Cooldown    float64 `json:"cooldown,omitempty"`
	MaxFanIn    int     `json:"max_fan_in,omitempty"`
	MinLoad     int     `json:"min_load,omitempty"`
}

// ChurnPlan converts the spec's scripted joins and leaves; nil when the
// spec has none (so a rebalance-only churn section still builds a grid
// without a plan).
func (s Spec) ChurnPlan() *membership.Plan {
	c := s.Churn
	if c == nil || len(c.Joins)+len(c.Leaves) == 0 {
		return nil
	}
	plan := &membership.Plan{
		Joins:  make([]membership.Join, len(c.Joins)),
		Leaves: make([]membership.Leave, len(c.Leaves)),
	}
	for i, j := range c.Joins {
		plan.Joins[i] = membership.Join{
			Time: j.Time, Name: j.Name, Hardware: j.Hardware, Nodes: j.Nodes,
			Parent: j.Parent, Environments: j.Environments,
		}
	}
	for i, l := range c.Leaves {
		plan.Leaves[i] = membership.Leave{Time: l.Time, Name: l.Name}
	}
	return plan
}

// RebalancePolicy converts the spec's rebalance section; nil (disabled)
// when absent or not enabled.
func (s Spec) RebalancePolicy() *membership.Policy {
	c := s.Churn
	if c == nil || c.Rebalance == nil || !c.Rebalance.Enabled {
		return nil
	}
	rb := c.Rebalance
	return &membership.Policy{
		CheckPeriod: rb.CheckPeriod, Imbalance: rb.Imbalance,
		Window: rb.Window, Cooldown: rb.Cooldown, MaxFanIn: rb.MaxFanIn,
		MinLoad: rb.MinLoad,
	}
}

// reservationDefaults resolves the zero shape fields.
func (r ReservationSpec) reservationDefaults() ReservationSpec {
	if r.Lead <= 0 {
		r.Lead = 300
	}
	if r.Duration <= 0 {
		r.Duration = 120
	}
	if r.Nodes <= 0 {
		r.Nodes = 2
	}
	if r.Parts <= 0 {
		r.Parts = 1
	}
	return r
}

// ReservationPolicy converts the spec's reservation section to the core
// policy; the zero policy when absent.
func (s Spec) ReservationPolicy() core.ReservationPolicy {
	if s.Reservations == nil {
		return core.ReservationPolicy{}
	}
	return core.ReservationPolicy{
		HoldTTL: s.Reservations.HoldTTL,
		MaxSlip: s.Reservations.MaxSlip,
	}
}

// DefaultGA returns the GA configuration of the §4.1 case study (the
// experiment package's DefaultParams delegates here, so scenarios and
// the Table 3 experiments stay in lockstep).
func DefaultGA() ga.Config {
	cfg := ga.DefaultConfig()
	cfg.MaxGenerations = 30
	cfg.ConvergenceWindow = 8
	return cfg
}

// Fig7 returns the §4.1 case study as a scenario: the Fig. 7 grid, 600
// requests at fixed one-second intervals, seed 2003, GA + agent-based
// discovery (the paper's experiment 3). Running it reproduces the
// experiment-3 column of Table 3 byte-identically.
func Fig7() Spec {
	return Spec{
		Name:     "fig7-case-study",
		Seed:     2003,
		Topology: TopologySpec{Preset: PresetFig7},
		Arrivals: ArrivalSpec{Process: "fixed", Count: 600, Interval: 1},
		Policy:   string(core.PolicyGA),
	}
}

// AgentsEnabled resolves the UseAgents default (true).
func (s Spec) AgentsEnabled() bool {
	return s.UseAgents == nil || *s.UseAgents
}

// GAConfig resolves the effective GA configuration.
func (s Spec) GAConfig() ga.Config {
	cfg := DefaultGA()
	if s.GA != nil {
		if s.GA.PopulationSize > 0 {
			cfg.PopulationSize = s.GA.PopulationSize
		}
		if s.GA.MaxGenerations > 0 {
			cfg.MaxGenerations = s.GA.MaxGenerations
		}
		if s.GA.ConvergenceWindow > 0 {
			cfg.ConvergenceWindow = s.GA.ConvergenceWindow
		}
		if s.GA.Workers > 0 {
			cfg.Workers = s.GA.Workers
		}
	}
	return cfg
}

// FaultPlan converts the spec's fault section; nil when absent.
func (s Spec) FaultPlan() *fault.Plan {
	if s.Faults == nil {
		return nil
	}
	plan := &fault.Plan{Seed: s.Faults.Seed, Events: make([]fault.Event, len(s.Faults.Events))}
	for i, ev := range s.Faults.Events {
		plan.Events[i] = fault.Event{
			At: ev.At, Kind: fault.Kind(ev.Kind), Agent: ev.Agent, A: ev.A, B: ev.B, Rate: ev.Rate,
			Factor: ev.Factor,
		}
	}
	return plan
}

// MigrationPolicy converts the spec's migration section; the zero
// (disabled) policy when absent.
func (s Spec) MigrationPolicy() core.MigrationPolicy {
	if s.Migration == nil {
		return core.MigrationPolicy{}
	}
	return core.MigrationPolicy{
		Enabled:        s.Migration.Enabled,
		CheckPeriod:    s.Migration.CheckPeriod,
		DriftThreshold: s.Migration.DriftThreshold,
		Window:         s.Migration.Window,
		Cooldown:       s.Migration.Cooldown,
		MaxPerRound:    s.Migration.MaxPerRound,
	}
}

// BuildProcess builds the workload.ArrivalProcess the spec describes.
func (a ArrivalSpec) BuildProcess() (workload.ArrivalProcess, error) {
	switch a.Process {
	case "", "fixed":
		iv := a.Interval
		if iv == 0 {
			iv = 1
		}
		return workload.FixedInterval{Interval: iv}, nil
	case "poisson":
		return workload.Poisson{Rate: a.Rate}, nil
	case "bursty":
		return workload.Bursty{OnRate: a.OnRate, OffRate: a.OffRate, OnMean: a.OnMean, OffMean: a.OffMean}, nil
	case "flashcrowd":
		return workload.FlashCrowd{
			BaseRate: a.BaseRate, PeakRate: a.PeakRate,
			RampStart: a.RampStart, RampDuration: a.RampDuration, Hold: a.Hold,
		}, nil
	case "trace":
		return workload.TraceReplay{At: a.Times}, nil
	default:
		return nil, fmt.Errorf("scenario: unknown arrival process %q (want fixed, poisson, bursty, flashcrowd or trace)", a.Process)
	}
}

// MeanRate returns the process's long-run arrival rate in requests per
// second — the load axis sweeps and the saturation finder bisect over.
// Traces have no free rate parameter and return an error.
func (a ArrivalSpec) MeanRate() (float64, error) {
	switch a.Process {
	case "", "fixed":
		iv := a.Interval
		if iv == 0 {
			iv = 1
		}
		return 1 / iv, nil
	case "poisson":
		return a.Rate, nil
	case "bursty":
		return (a.OnRate*a.OnMean + a.OffRate*a.OffMean) / (a.OnMean + a.OffMean), nil
	case "flashcrowd":
		return a.BaseRate, nil
	default:
		return 0, fmt.Errorf("scenario: arrival process %q has no mean rate to scale", a.Process)
	}
}

// WithMeanRate returns a copy of the spec scaled so its long-run rate is
// rate, preserving the process's shape (burst duty cycle, crowd ratio).
func (a ArrivalSpec) WithMeanRate(rate float64) (ArrivalSpec, error) {
	if rate <= 0 {
		return ArrivalSpec{}, fmt.Errorf("scenario: target rate %g must be positive", rate)
	}
	cur, err := a.MeanRate()
	if err != nil {
		return ArrivalSpec{}, err
	}
	f := rate / cur
	out := a
	switch a.Process {
	case "", "fixed":
		iv := a.Interval
		if iv == 0 {
			iv = 1
		}
		out.Interval = iv / f
	case "poisson":
		out.Rate = rate
	case "bursty":
		out.OnRate *= f
		out.OffRate *= f
	case "flashcrowd":
		out.BaseRate *= f
		out.PeakRate *= f
	}
	return out, nil
}

// Validate checks the spec end to end: topology, arrivals, policy,
// workload shaping and the fault plan's agent references.
func (s Spec) Validate() error {
	resources, err := s.Topology.Build()
	if err != nil {
		return err
	}
	if _, err := core.ParsePolicy(s.Policy); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if s.Arrivals.Count <= 0 {
		return fmt.Errorf("scenario: arrival count %d must be positive", s.Arrivals.Count)
	}
	proc, err := s.Arrivals.BuildProcess()
	if err != nil {
		return err
	}
	if err := proc.Validate(); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if s.DeadlineScale < 0 {
		return fmt.Errorf("scenario: negative deadline scale %g", s.DeadlineScale)
	}
	if s.Migration != nil && s.Migration.Enabled && !s.AgentsEnabled() {
		return fmt.Errorf("scenario: migration requires use_agents (tasks are re-placed through agent discovery)")
	}
	if r := s.Reservations; r != nil {
		if r.Share < 0 || r.Share > 1 {
			return fmt.Errorf("scenario: reservation share %g outside [0,1]", r.Share)
		}
		if r.Share > 0 && !s.AgentsEnabled() {
			return fmt.Errorf("scenario: reservations require use_agents (windows are shopped through agent discovery)")
		}
		if r.Lead < 0 || r.Duration < 0 || r.Nodes < 0 || r.Parts < 0 || r.HoldTTL < 0 || r.MaxSlip < 0 {
			return fmt.Errorf("scenario: negative reservation parameter (lead %g, duration %g, nodes %d, parts %d, hold_ttl %g, max_slip %g)",
				r.Lead, r.Duration, r.Nodes, r.Parts, r.HoldTTL, r.MaxSlip)
		}
	}
	if c := s.Churn; c != nil {
		if !s.AgentsEnabled() {
			return fmt.Errorf("scenario: churn requires use_agents (membership is an agent-layer notion)")
		}
		if plan := s.ChurnPlan(); plan != nil {
			head := ""
			base := make([]string, len(resources))
			for i, r := range resources {
				base[i] = r.Name
				if r.Parent == "" {
					head = r.Name
				}
			}
			if err := plan.Validate(head, base); err != nil {
				return err
			}
		}
	}
	if plan := s.FaultPlan(); plan != nil {
		if !s.AgentsEnabled() {
			return fmt.Errorf("scenario: a fault plan requires use_agents (the fault model targets the agent layer)")
		}
		known := make(map[string]bool, len(resources))
		for _, r := range resources {
			known[r.Name] = true
		}
		if err := plan.Validate(known); err != nil {
			return err
		}
	}
	return nil
}

// Load reads, decodes and validates a scenario file. Unknown JSON fields
// are errors — a typoed knob silently reverting to a default would
// invalidate an experiment. A trace_file is resolved relative to the
// spec file's directory and loaded into Arrivals.Times.
func Load(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	if s.Arrivals.TraceFile != "" {
		if len(s.Arrivals.Times) > 0 {
			return Spec{}, fmt.Errorf("scenario: %s: trace_file and times are mutually exclusive", path)
		}
		tracePath := s.Arrivals.TraceFile
		if !filepath.IsAbs(tracePath) {
			tracePath = filepath.Join(filepath.Dir(path), tracePath)
		}
		times, err := LoadTraceCSV(tracePath)
		if err != nil {
			return Spec{}, err
		}
		s.Arrivals.Times = times
	}
	if s.Name == "" {
		s.Name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	}
	if err := s.Validate(); err != nil {
		return Spec{}, fmt.Errorf("scenario: %s: %w", path, err)
	}
	return s, nil
}

// LoadTraceCSV reads arrival times from a CSV/plain-text file: one time
// per line (the first field of each line), '#' comments and a
// non-numeric header line skipped.
func LoadTraceCSV(path string) ([]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	var out []float64
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		field := line
		if idx := strings.IndexByte(line, ','); idx >= 0 {
			field = line[:idx]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
		if err != nil {
			if len(out) == 0 {
				continue // header line
			}
			return nil, fmt.Errorf("scenario: %s line %d: %w", path, i+1, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: %s holds no arrival times", path)
	}
	return out, nil
}
