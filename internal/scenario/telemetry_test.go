package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestRunTelemetry proves the observing-only contract at the scenario
// layer — identical results with the registry on or off — and that the
// export carries the registry totals and the virtual-time series.
func TestRunTelemetry(t *testing.T) {
	spec := smallSpec()
	plain, err := Run(spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	instr, err := Run(spec, RunOptions{Telemetry: true, SamplePeriod: 5})
	if err != nil {
		t.Fatal(err)
	}

	p, q := stripHost(plain), stripHost(instr)
	q.Telemetry = nil
	// The sampler's periodic ticks are real simulator events, so the
	// executed-event count legitimately differs; every scheduling result
	// must not.
	p.SimEvents, q.SimEvents = 0, 0
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("telemetry changed scenario results:\noff: %+v\non:  %+v", p, q)
	}

	exp := instr.Telemetry
	if exp == nil || exp.Series == nil {
		t.Fatal("instrumented run exported no telemetry")
	}
	if got := exp.Snapshot.Counters["grid_requests_total"]; got != 120 {
		t.Fatalf("grid_requests_total = %d, want 120", got)
	}
	if len(exp.Series.Points) < 2 {
		t.Fatalf("series has %d points", len(exp.Series.Points))
	}
	if plain.Telemetry != nil {
		t.Fatal("uninstrumented run exported telemetry")
	}

	// The export must survive the JSON path gridexp uses.
	blob, err := json.Marshal(instr)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Telemetry == nil || back.Telemetry.Snapshot.Counters["grid_requests_total"] != 120 {
		t.Fatal("telemetry lost in JSON round-trip")
	}
}

// TestSweepTelemetryPerPoint checks that concurrent sweep points keep
// isolated registries: each point's totals match its own workload.
func TestSweepTelemetryPerPoint(t *testing.T) {
	spec := smallSpec()
	spec.Arrivals.Count = 60
	pts, err := Sweep(spec, AxisRate, []float64{1, 3}, RunOptions{Telemetry: true, SamplePeriod: 20})
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		exp := pt.Result.Telemetry
		if exp == nil {
			t.Fatalf("point %d has no telemetry", i)
		}
		if got := exp.Snapshot.Counters["grid_requests_total"]; got != uint64(pt.Result.Requests) {
			t.Fatalf("point %d: grid_requests_total = %d, want %d", i, got, pt.Result.Requests)
		}
	}
}
