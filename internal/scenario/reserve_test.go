package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// reservedSpec mixes a reserved share into the small scenario.
func reservedSpec(share float64) Spec {
	spec := smallSpec()
	spec.Name = "small-reserved"
	spec.Reservations = &ReservationSpec{Share: share, Lead: 200, Duration: 60, Nodes: 2, Parts: 1}
	return spec
}

func TestReservedScenarioRun(t *testing.T) {
	res, err := Run(reservedSpec(0.15), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ResvRequested == 0 {
		t.Fatal("a 15% share over 120 requests reserved nothing")
	}
	if res.ResvConfirmed+res.ResvRejected != res.ResvRequested {
		t.Fatalf("admission accounting: %d requested, %d confirmed, %d rejected",
			res.ResvRequested, res.ResvConfirmed, res.ResvRejected)
	}
	if res.ResvConfirmed > 0 {
		if res.GuaranteeHitRate < 0 || res.GuaranteeHitRate > 1 {
			t.Fatalf("guarantee hit rate %v outside [0,1]", res.GuaranteeHitRate)
		}
		if res.ResvParts < res.ResvConfirmed {
			t.Fatalf("%d parts for %d confirmed reservations", res.ResvParts, res.ResvConfirmed)
		}
	}
	if !res.AuditOK {
		t.Fatalf("audit failed:\n%s", res.AuditSummary)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "reservations:") || !strings.Contains(out, "best-effort class:") {
		t.Fatalf("formatted result omits the reservation lines:\n%s", out)
	}
}

// TestReservationShareZeroByteIdentical pins the byte-identity contract
// at the scenario layer: a spec carrying a reservation section with a
// zero share runs exactly as a spec that has never heard of
// reservations.
func TestReservationShareZeroByteIdentical(t *testing.T) {
	plain, err := Run(smallSpec(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Run(reservedSpec(0), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, z := stripHost(plain), stripHost(zero)
	p.Name, z.Name = "", ""
	if !reflect.DeepEqual(p, z) {
		t.Fatalf("a zero reservation share changed the run:\nplain: %+v\nzero:  %+v", p, z)
	}
}

// TestReservedScenarioDeterministic demands identical results across
// repeated runs and worker widths for a mixed reserved workload.
func TestReservedScenarioDeterministic(t *testing.T) {
	spec := reservedSpec(0.2)
	a, err := Run(spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripHost(a), stripHost(b)) {
		t.Fatalf("reserved scenario differs across worker widths:\n1: %+v\n4: %+v", stripHost(a), stripHost(b))
	}
}

func TestReservationSpecValidation(t *testing.T) {
	bad := reservedSpec(1.5)
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "share") {
		t.Fatalf("share 1.5 accepted: %v", err)
	}
	noAgents := reservedSpec(0.2)
	f := false
	noAgents.UseAgents = &f
	if err := noAgents.Validate(); err == nil || !strings.Contains(err.Error(), "use_agents") {
		t.Fatalf("reservations without agents accepted: %v", err)
	}
	neg := reservedSpec(0.2)
	neg.Reservations.Duration = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative reservation duration accepted")
	}
}
