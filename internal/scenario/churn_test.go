package scenario

import (
	"encoding/json"
	"testing"
)

// churnFig7 is the Fig. 7 case study with a scripted join, a scripted
// leave and the rebalancer on — the composition Experiment 7 uses.
func churnFig7() Spec {
	s := Fig7()
	s.Arrivals.Count = 80
	s.Churn = &ChurnSpec{
		Joins:     []ChurnJoin{{Time: 20, Name: "S13", Hardware: "SGIOrigin2000", Nodes: 16, Parent: "S5"}},
		Leaves:    []ChurnLeave{{Time: 60, Name: "S9"}},
		Rebalance: &RebalanceSpec{Enabled: true, MinLoad: 1, Window: 1, Cooldown: 10},
	}
	return s
}

func TestChurnSpecValidation(t *testing.T) {
	if err := churnFig7().Validate(); err != nil {
		t.Fatalf("valid churn spec rejected: %v", err)
	}

	off := false
	bad := churnFig7()
	bad.UseAgents = &off
	if err := bad.Validate(); err == nil {
		t.Fatal("churn without agents accepted")
	}

	bad = churnFig7()
	bad.Churn.Joins[0].Parent = "S99"
	if err := bad.Validate(); err == nil {
		t.Fatal("join under an unknown parent accepted")
	}

	bad = churnFig7()
	bad.Churn.Joins[0].Name = "S3"
	if err := bad.Validate(); err == nil {
		t.Fatal("join shadowing an existing resource accepted")
	}

	bad = churnFig7()
	bad.Churn.Leaves[0].Name = "S1"
	if err := bad.Validate(); err == nil {
		t.Fatal("head leave accepted")
	}

	// A rebalance-only churn section is valid: no scripted events, just
	// the load-driven planner.
	rb := churnFig7()
	rb.Churn.Joins, rb.Churn.Leaves = nil, nil
	if err := rb.Validate(); err != nil {
		t.Fatalf("rebalance-only churn rejected: %v", err)
	}
	if rb.ChurnPlan() != nil {
		t.Fatal("rebalance-only churn built a non-nil plan")
	}
	if rb.RebalancePolicy() == nil {
		t.Fatal("enabled rebalance built a nil policy")
	}
}

// TestChurnScenarioRunsClean runs the composed churn scenario through
// the scenario layer with the streaming audit and demands a clean
// verdict plus the scripted membership activity in the result.
func TestChurnScenarioRunsClean(t *testing.T) {
	res, err := Run(churnFig7(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AuditOK {
		t.Fatalf("churn run failed its audit: %s", res.AuditSummary)
	}
	if res.Joins != 1 || res.Leaves != 1 {
		t.Fatalf("membership activity joins=%d leaves=%d, want 1/1", res.Joins, res.Leaves)
	}
	if res.Completed != res.Requests {
		t.Fatalf("%d of %d requests completed — churn lost work", res.Completed, res.Requests)
	}

	// Determinism through the scenario layer: a second run is identical
	// on every reported number.
	again, err := Run(churnFig7(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	again.WallClock = res.WallClock
	aj, _ := json.Marshal(again)
	rj, _ := json.Marshal(res)
	if string(aj) != string(rj) {
		t.Fatalf("churn scenario not deterministic:\n first %s\nsecond %s", rj, aj)
	}
}
