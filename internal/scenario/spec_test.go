package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/workload"
)

func TestFig7PresetTopology(t *testing.T) {
	specs, err := TopologySpec{Preset: PresetFig7}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 12 {
		t.Fatalf("fig7 preset has %d resources, want 12", len(specs))
	}
	if specs[0].Name != "S1" || specs[0].Parent != "" {
		t.Fatalf("fig7 head = %+v, want S1 at the root", specs[0])
	}
	if specs[11].Hardware != "SunSPARCstation2" {
		t.Fatalf("S12 hardware %q, want SunSPARCstation2", specs[11].Hardware)
	}
	if _, err := (TopologySpec{Preset: "fig8"}).Build(); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := (TopologySpec{Preset: PresetFig7, Agents: 5}).Build(); err == nil {
		t.Fatal("preset plus generated fields accepted")
	}
}

func TestGeneratedTopology(t *testing.T) {
	spec := TopologySpec{Agents: 13, Branching: 3, NodeMix: []int{16, 8}, Hardware: []string{"SGIOrigin2000", "SunUltra5"}}
	specs, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 13 {
		t.Fatalf("%d resources, want 13", len(specs))
	}
	if specs[0].Parent != "" {
		t.Fatalf("A1 has parent %q, want the head", specs[0].Parent)
	}
	// Branching 3: A2..A4 under A1, A5..A7 under A2, ...
	if specs[1].Parent != "A1" || specs[3].Parent != "A1" || specs[4].Parent != "A2" || specs[12].Parent != "A4" {
		t.Fatalf("tree wiring wrong: %v %v %v %v", specs[1].Parent, specs[3].Parent, specs[4].Parent, specs[12].Parent)
	}
	// Mixes cycle.
	if specs[0].Nodes != 16 || specs[1].Nodes != 8 || specs[2].Nodes != 16 {
		t.Fatalf("node mix not cycling: %d %d %d", specs[0].Nodes, specs[1].Nodes, specs[2].Nodes)
	}
	if specs[0].Hardware != "SGIOrigin2000" || specs[1].Hardware != "SunUltra5" || specs[2].Hardware != "SGIOrigin2000" {
		t.Fatalf("hardware mix not cycling: %v %v %v", specs[0].Hardware, specs[1].Hardware, specs[2].Hardware)
	}

	if _, err := (TopologySpec{}).Build(); err == nil {
		t.Fatal("empty topology accepted")
	}
	if _, err := (TopologySpec{Agents: 3, Hardware: []string{"PDP11"}}).Build(); err == nil {
		t.Fatal("unknown hardware accepted")
	}
	if _, err := (TopologySpec{Agents: 3, Nodes: 65}).Build(); err == nil {
		t.Fatal("node count beyond the 64-bit mask accepted")
	}
}

func TestSpecValidate(t *testing.T) {
	good := Fig7()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := good
	bad.Policy = "round-robin"
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown policy accepted")
	}

	bad = good
	bad.Arrivals.Count = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero request count accepted")
	}

	bad = good
	bad.Arrivals = ArrivalSpec{Process: "poisson", Count: 10, Rate: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative poisson rate accepted")
	}

	// Fault plans demand agents and known names.
	off := false
	bad = good
	bad.Faults = &FaultSpec{Events: []FaultEvent{{At: 10, Kind: "crash", Agent: "S2"}}}
	bad.UseAgents = &off
	if err := bad.Validate(); err == nil {
		t.Fatal("fault plan without agents accepted")
	}
	bad.UseAgents = nil
	if err := bad.Validate(); err != nil {
		t.Fatalf("valid fault plan rejected: %v", err)
	}
	bad.Faults.Events[0].Agent = "S99"
	if err := bad.Validate(); err == nil {
		t.Fatal("fault plan naming an unknown agent accepted")
	}
}

func TestLoadScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "crowd.json")
	body := `{
 "seed": 7,
 "topology": {"agents": 6, "branching": 2, "nodes": 8},
 "arrivals": {"process": "flashcrowd", "count": 50, "base_rate": 1, "peak_rate": 10, "ramp_start": 10, "ramp_duration": 5, "hold": 10},
 "app_weights": {"fft": 2, "cpi": 1},
 "deadline_scale": 0.8,
 "policy": "ga"
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "crowd" {
		t.Fatalf("name %q, want basename default", spec.Name)
	}
	proc, err := spec.Arrivals.BuildProcess()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := proc.(workload.FlashCrowd); !ok {
		t.Fatalf("process %T, want FlashCrowd", proc)
	}

	// Unknown fields are typos, not extensions.
	bad := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(bad, []byte(`{"seed": 1, "topolgy": {"agents": 3}, "arrivals": {"count": 5}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
}

func TestLoadTraceFile(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "arrivals.csv")
	if err := os.WriteFile(trace, []byte("# recorded arrivals\ntime_s,source\n0.0,portal\n1.5,portal\n2.25,portal\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "replay.json")
	body := `{
 "seed": 3,
 "topology": {"preset": "fig7"},
 "arrivals": {"process": "trace", "count": 100, "trace_file": "arrivals.csv"}
}`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 2.25}
	if len(spec.Arrivals.Times) != len(want) {
		t.Fatalf("loaded %v, want %v", spec.Arrivals.Times, want)
	}
	for i, v := range want {
		if spec.Arrivals.Times[i] != v {
			t.Fatalf("time %d = %v, want %v", i, spec.Arrivals.Times[i], v)
		}
	}
}

func TestArrivalRateScaling(t *testing.T) {
	cases := []ArrivalSpec{
		{Process: "fixed", Count: 10, Interval: 2},
		{Process: "poisson", Count: 10, Rate: 3},
		{Process: "bursty", Count: 10, OnRate: 8, OffRate: 2, OnMean: 5, OffMean: 15},
		{Process: "flashcrowd", Count: 10, BaseRate: 1, PeakRate: 10, RampStart: 5, RampDuration: 5, Hold: 5},
	}
	for _, c := range cases {
		scaled, err := c.WithMeanRate(4)
		if err != nil {
			t.Fatalf("%s: %v", c.Process, err)
		}
		got, err := scaled.MeanRate()
		if err != nil {
			t.Fatal(err)
		}
		if diff := got - 4; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: scaled mean rate %v, want 4", c.Process, got)
		}
	}
	// Shape is preserved: bursty keeps its on/off ratio.
	b := cases[2]
	scaled, _ := b.WithMeanRate(7)
	if ratio := scaled.OnRate / scaled.OffRate; ratio != 4 {
		t.Fatalf("bursty on/off ratio %v after scaling, want 4", ratio)
	}
	if _, err := (ArrivalSpec{Process: "trace", Times: []float64{1}}).WithMeanRate(2); err == nil {
		t.Fatal("trace rate scaling accepted")
	}
}

func TestParseAxis(t *testing.T) {
	axis, vals, err := ParseAxis("rate=0.5,1,2.5")
	if err != nil {
		t.Fatal(err)
	}
	if axis != "rate" || len(vals) != 3 || vals[2] != 2.5 {
		t.Fatalf("ParseAxis = %q %v", axis, vals)
	}
	for _, bad := range []string{"rate", "=1,2", "rate=", "rate=a,b"} {
		if _, _, err := ParseAxis(bad); err == nil {
			t.Fatalf("ParseAxis(%q) accepted", bad)
		}
	}
}
