package scenario

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// reservationPickSalt decorrelates the reservation-diversion RNG from
// the workload generator (both streams are derived from the run seed).
const reservationPickSalt = 0x9e3779b97f4a7c15

// RunOptions carries the knobs that belong to the host, not the
// experiment: they may change wall-clock time but never results.
type RunOptions struct {
	// Workers bounds the GA cost-evaluation goroutines per scheduler;
	// results are bit-identical for any value (PR 2's contract).
	Workers int
	// Trace, when set, receives the full request lifecycle (the caller
	// wants an export). The audit no longer needs it: every run streams
	// its lifecycle into an audit.Observer directly, so without Trace no
	// history is retained at all. A retaining recorder must be sized for
	// at least 8×Count+64 events — Run refuses an undersized ring loudly
	// rather than exporting a silently truncated trace; stream through a
	// trace.CSVSink with retention off for unbounded runs.
	Trace *trace.Recorder
	// Telemetry instruments the run on a fresh registry and attaches the
	// final snapshot plus the virtual-time series to Result.Telemetry.
	// Observing only: results are byte-identical with it on or off.
	Telemetry bool
	// SamplePeriod is the series sampling period in virtual seconds;
	// <= 0 defaults to core's 10 s. Ignored without Telemetry.
	SamplePeriod float64
}

// Result is one scenario run, reduced to the numbers a sweep compares:
// the §3.3 grid metrics, deadline behaviour, throughput and the audit
// verdict. The full per-resource report stays available for detail.
type Result struct {
	Name      string  `json:"name,omitempty"`
	Seed      uint64  `json:"seed"`
	Agents    int     `json:"agents"`
	Requests  int     `json:"requests"`  // submitted
	Completed int     `json:"completed"` // execution records
	Span      float64 `json:"span_s"`    // request phase length (last arrival), virtual seconds

	Epsilon float64 `json:"eps_s"`    // §3.3 ε, seconds
	Upsilon float64 `json:"ups_pct"`  // §3.3 υ, percent
	Beta    float64 `json:"beta_pct"` // §3.3 β, percent

	HitRate    float64 `json:"hit_rate"`     // fraction of tasks meeting their deadline
	SlackP50   float64 `json:"slack_p50_s"`  // makespan-slack (δ − η) percentiles, seconds
	SlackP95   float64 `json:"slack_p95_s"`  // (p95/p99 of the *shortfall* tail: lower percentiles
	SlackP99   float64 `json:"slack_p99_s"`  // of advance, i.e. the worst 5% and 1% of tasks)
	Throughput float64 `json:"throughput_s"` // completions per virtual second

	MeanHops  float64 `json:"mean_hops"` // discovery locality (agent runs only)
	MaxHops   int     `json:"max_hops"`
	Fallbacks int     `json:"fallbacks"`

	// Migration-policy activity (zero unless the spec enables migration).
	MigrateOffers  int `json:"migrate_offers,omitempty"`
	MigrateAccepts int `json:"migrate_accepts,omitempty"`
	MigrateRejects int `json:"migrate_rejects,omitempty"`

	// Dynamic-membership activity (zero unless the spec scripts churn or
	// enables the rebalancer).
	Joins   int `json:"joins,omitempty"`
	Leaves  int `json:"leaves,omitempty"`
	Drained int `json:"drained,omitempty"`
	Moves   int `json:"rehome_moves,omitempty"`

	// Reservation admission and guarantee behaviour (zero unless the spec
	// reserves a share of the traffic).
	ResvRequested int `json:"resv_requested,omitempty"`
	ResvConfirmed int `json:"resv_confirmed,omitempty"`
	ResvRejected  int `json:"resv_rejected,omitempty"`
	ResvExpired   int `json:"resv_expired,omitempty"`
	ResvParts     int `json:"resv_parts,omitempty"`
	// GuaranteeHitRate is the fraction of confirmed reservation parts that
	// finished inside their booked window (reserved records carry the
	// window end as their deadline, so this is their deadline-hit rate).
	GuaranteeHitRate float64 `json:"guarantee_hit_rate,omitempty"`
	// Per-class §3.3 metrics: the best-effort traffic alone, so admission
	// studies can read the degradation reservations impose on it.
	BestEffortEpsilon float64 `json:"be_eps_s,omitempty"`
	BestEffortUpsilon float64 `json:"be_ups_pct,omitempty"`
	BestEffortBeta    float64 `json:"be_beta_pct,omitempty"`

	WallClock float64 `json:"wall_clock_s"` // host seconds, informational only
	SimEvents uint64  `json:"sim_events"`   // simulator events executed (throughput numerator)

	AuditOK         bool   `json:"audit_ok"`
	AuditViolations int    `json:"audit_violations"`
	AuditSummary    string `json:"audit_summary"`

	// Telemetry is the final registry snapshot plus the virtual-time
	// series, present only when RunOptions.Telemetry was set.
	Telemetry *telemetry.Export `json:"telemetry,omitempty"`

	Report metrics.GridReport `json:"-"` // full per-resource detail
	Audit  *audit.Result      `json:"-"`
}

// Run executes one scenario with the given seed override (pass
// spec.Seed for a standalone run; sweeps pass split-derived seeds). The
// lifecycle auditor runs on every scenario run — generated topologies
// and open arrival processes are exactly where a conservation or
// exclusivity bug would hide, so no scenario result is reported without
// its audit verdict.
func runSeeded(spec Spec, seed uint64, opt RunOptions) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	start := time.Now()

	resources, err := spec.Topology.Build()
	if err != nil {
		return Result{}, err
	}
	names := make([]string, len(resources))
	for i, r := range resources {
		names[i] = r.Name
	}
	policy, err := core.ParsePolicy(spec.Policy)
	if err != nil {
		return Result{}, err
	}
	rec := opt.Trace
	if rec != nil && rec.Retaining() {
		if need := 8*spec.Arrivals.Count + 64; rec.Capacity() < need {
			return Result{}, fmt.Errorf(
				"scenario %q: trace ring capacity %d cannot retain a %d-request run (need %d events); size the ring for the spec or stream with retention off",
				spec.Name, rec.Capacity(), spec.Arrivals.Count, need)
		}
	}
	// The audit streams: every lifecycle event, execution record and
	// dispatch feeds the observer as it happens, and the post-advance
	// watermark lets it retire finished requests — O(in-flight) memory
	// where the old end-of-run audit.Check retained the whole run.
	nodes := make(map[string]int, len(resources))
	for _, r := range resources {
		nodes[r.Name] = r.Nodes
	}
	if spec.Churn != nil {
		// Runtime joiners execute work too; the audit must know their
		// node counts or their records read as "unknown resource".
		for _, j := range spec.Churn.Joins {
			nodes[j.Name] = j.Nodes
		}
	}
	obs := audit.NewObserver(nodes)
	copts := core.Options{
		Policy:      policy,
		GA:          spec.GAConfig(),
		Workers:     opt.Workers,
		UseAgents:   spec.AgentsEnabled(),
		Seed:        seed,
		Trace:       rec,
		Audit:       obs,
		FaultPlan:   spec.FaultPlan(),
		Migration:   spec.MigrationPolicy(),
		Reservation: spec.ReservationPolicy(),
		Churn:       spec.ChurnPlan(),
		Rebalance:   spec.RebalancePolicy(),
	}
	if opt.Telemetry {
		// Each run gets a fresh registry: sweep points run concurrently
		// and their totals must not bleed into each other.
		copts.Telemetry = telemetry.NewRegistry()
		copts.SamplePeriod = opt.SamplePeriod
	}
	grid, err := core.New(resources, copts)
	if err != nil {
		return Result{}, err
	}

	proc, err := spec.Arrivals.BuildProcess()
	if err != nil {
		return Result{}, err
	}
	reqs, err := workload.Generate(workload.Spec{
		Seed:          seed,
		Count:         spec.Arrivals.Count,
		AgentNames:    names,
		Library:       grid.Library(),
		Arrivals:      proc,
		AppWeights:    spec.AppWeights,
		DeadlineScale: spec.DeadlineScale,
	})
	if err != nil {
		return Result{}, err
	}
	if rs := spec.Reservations; rs != nil && rs.Share > 0 {
		// The diversion draws from its own salted RNG stream: the requests
		// that stay best-effort are submitted exactly as a share-0 run
		// submits them, and raising the share only removes requests from
		// that stream, never perturbs it.
		shape := rs.reservationDefaults()
		pick := sim.NewRNG(seed ^ reservationPickSalt)
		for _, r := range reqs {
			if pick.Bool(rs.Share) {
				err = grid.SubmitReservationAt(r.At, r.AgentName, r.AppName, shape.Lead, shape.Duration, shape.Nodes, shape.Parts)
			} else {
				err = grid.SubmitAt(r.At, r.AgentName, r.AppName, r.DeadlineRel)
			}
			if err != nil {
				return Result{}, err
			}
		}
	} else if err := grid.SubmitWorkload(reqs); err != nil {
		return Result{}, err
	}
	if err := grid.Run(); err != nil {
		return Result{}, fmt.Errorf("scenario %q: %w", spec.Name, err)
	}

	span := workload.Summarise(reqs).Span
	// The measurement window floor is the request phase. Under fixed
	// intervals the phase is Count×Interval — the §4.1 definition, and
	// what keeps a Fig. 7 scenario byte-identical to experiment.Run —
	// while open arrival processes only know the last arrival time.
	minWindow := span
	if f, ok := proc.(workload.FixedInterval); ok {
		minWindow = float64(len(reqs)) * f.Interval
	}
	recs := grid.Records()
	disp := grid.Dispatches()
	report, err := grid.MetricsOver(recs, minWindow)
	if err != nil {
		return Result{}, err
	}
	// The observer saw the complete stream regardless of any trace-ring
	// eviction, so the audit is never truncated by the ring; a lossy CSV
	// export surfaces in the file's own trailer row instead.
	res := obs.Finish(report, 0)

	out := Result{
		Name:      spec.Name,
		Seed:      seed,
		Agents:    len(resources),
		Requests:  len(reqs),
		Completed: len(recs),
		Span:      span,

		Epsilon: report.Total.Epsilon,
		Upsilon: report.Total.Upsilon,
		Beta:    report.Total.Beta,

		HitRate:    metrics.HitRate(recs),
		Throughput: metrics.Throughput(recs, report.Window),

		WallClock: time.Since(start).Seconds(),
		SimEvents: grid.SimEvents(),

		AuditOK:         res.OK(),
		AuditViolations: len(res.Violations),
		AuditSummary:    res.Summary(),

		Report: report,
		Audit:  &res,
	}
	out.Telemetry = grid.TelemetryExport()
	if len(recs) > 0 {
		slack := make([]float64, len(recs))
		for i, r := range recs {
			slack[i] = r.Deadline - r.End
		}
		// The operator question is "how bad is the tail": p95/p99 here
		// are the 5th and 1st percentiles of slack — the worst-off tasks
		// — so a saturating grid shows them going negative first.
		ps := metrics.Percentiles(slack, 0.50, 0.05, 0.01)
		out.SlackP50, out.SlackP95, out.SlackP99 = ps[0], ps[1], ps[2]
	}
	var hops int
	for _, d := range disp {
		hops += d.Hops
		if d.Hops > out.MaxHops {
			out.MaxHops = d.Hops
		}
		if d.Fallback {
			out.Fallbacks++
		}
	}
	if n := len(disp); n > 0 {
		out.MeanHops = float64(hops) / float64(n)
	}
	ms := grid.MigrationStats()
	out.MigrateOffers, out.MigrateAccepts, out.MigrateRejects = ms.Offers, ms.Accepts, ms.Rejects
	mbs := grid.MembershipStats()
	out.Joins, out.Leaves, out.Drained, out.Moves = mbs.Joins, mbs.Leaves, mbs.Drained, mbs.Moves
	rs := grid.ReservationStats()
	out.ResvRequested, out.ResvConfirmed, out.ResvRejected = rs.Requested, rs.Confirmed, rs.Rejected
	out.ResvExpired, out.ResvParts = rs.Expired, rs.Parts
	if reserved := grid.ReservedRequests(); len(reserved) > 0 {
		var resvRecs, beRecs []scheduler.Record
		for _, r := range recs {
			if reserved[r.ReqID] {
				resvRecs = append(resvRecs, r)
			} else {
				beRecs = append(beRecs, r)
			}
		}
		out.GuaranteeHitRate = metrics.HitRate(resvRecs)
		if len(beRecs) > 0 {
			beReport, err := grid.MetricsOver(beRecs, minWindow)
			if err != nil {
				return Result{}, err
			}
			out.BestEffortEpsilon = beReport.Total.Epsilon
			out.BestEffortUpsilon = beReport.Total.Upsilon
			out.BestEffortBeta = beReport.Total.Beta
		}
	}
	return out, nil
}

// Run executes the scenario under its own seed.
func Run(spec Spec, opt RunOptions) (Result, error) {
	return runSeeded(spec, spec.Seed, opt)
}

// FormatResult renders one scenario run for the terminal.
func FormatResult(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %s (seed %d): %d agents, %d requests, %d completed over %.0f s (%.1f s wall)\n",
		r.Name, r.Seed, r.Agents, r.Requests, r.Completed, r.Span, r.WallClock)
	fmt.Fprintf(&b, "  eps %+.1f s   ups %.1f %%   beta %.1f %%\n", r.Epsilon, r.Upsilon, r.Beta)
	fmt.Fprintf(&b, "  deadline-hit %.1f %%   slack p50/p95/p99 %+.1f/%+.1f/%+.1f s   throughput %.2f /s\n",
		r.HitRate*100, r.SlackP50, r.SlackP95, r.SlackP99, r.Throughput)
	if r.MaxHops > 0 || r.Fallbacks > 0 {
		fmt.Fprintf(&b, "  discovery: %.2f mean hops, %d max, %d fallbacks\n", r.MeanHops, r.MaxHops, r.Fallbacks)
	}
	if r.MigrateOffers > 0 {
		fmt.Fprintf(&b, "  migration: %d offers, %d accepted, %d rejected\n", r.MigrateOffers, r.MigrateAccepts, r.MigrateRejects)
	}
	if r.Joins+r.Leaves+r.Moves > 0 {
		fmt.Fprintf(&b, "  membership: %d joins, %d leaves (%d tasks drained), %d rehome moves\n",
			r.Joins, r.Leaves, r.Drained, r.Moves)
	}
	if r.ResvRequested > 0 {
		fmt.Fprintf(&b, "  reservations: %d requested, %d confirmed (%d parts), %d rejected, %d expired   guarantee-hit %.1f %%\n",
			r.ResvRequested, r.ResvConfirmed, r.ResvParts, r.ResvRejected, r.ResvExpired, r.GuaranteeHitRate*100)
		fmt.Fprintf(&b, "  best-effort class: eps %+.1f s   ups %.1f %%   beta %.1f %%\n",
			r.BestEffortEpsilon, r.BestEffortUpsilon, r.BestEffortBeta)
	}
	fmt.Fprintf(&b, "  audit: %s\n", r.AuditSummary)
	return b.String()
}
