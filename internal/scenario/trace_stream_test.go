package scenario

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestStreamedTraceMatchesBatchExport pins the streaming-sink contract
// on a real run: a retention-off recorder fanning out to a CSVSink must
// produce byte-for-byte the CSV that a retaining recorder's end-of-run
// WriteCSV produces, while holding only the in-flight reorder window.
func TestStreamedTraceMatchesBatchExport(t *testing.T) {
	spec := smallSpec()

	// Batch path: retain everything, sort and export at the end.
	batch := trace.NewRecorder(8*spec.Arrivals.Count + 64)
	if _, err := Run(spec, RunOptions{Trace: batch}); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := batch.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	// Streaming path: retention off, rows flushed at the grid's
	// advance watermark, drained on Close.
	var got strings.Builder
	sink := trace.NewCSVSink(&got)
	stream := trace.NewRecorder(1)
	stream.SetRetention(false)
	stream.AddSink(sink)
	if _, err := Run(spec, RunOptions{Trace: stream}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(stream.Dropped()); err != nil {
		t.Fatal(err)
	}

	if want.String() != got.String() {
		t.Fatalf("streamed CSV differs from batch export:\nbatch:\n%s\nstream:\n%s", want.String(), got.String())
	}
	if sink.PeakBuffered() == 0 {
		t.Fatal("sink buffered nothing — trace never reached it")
	}
	// The reorder buffer must track the in-flight window, not the run:
	// retaining the whole trace would defeat the point of streaming.
	if events := 8 * spec.Arrivals.Count; sink.PeakBuffered() >= events/2 {
		t.Fatalf("peak reorder buffer %d events is not bounded by the in-flight window (run emits ~%d)", sink.PeakBuffered(), events)
	}
}
