package scenario

import (
	"fmt"
	"strings"
)

// The saturation finder measures a topology's capacity: the arrival rate
// at which the grid-wide advance time ε crosses zero — below it most
// deadlines are met with time to spare, above it the grid can no longer
// keep up (Savvas & Kechadi's point that scheduler behaviour must be
// measured *past* saturation, not at one operating point). ε(rate) is
// monotone in expectation but locally noisy (each probe is one finite
// run), so the search brackets the crossing with doubling/halving and
// then bisects.

// SaturationProbe records one evaluated rate.
type SaturationProbe struct {
	Rate    float64 `json:"rate"`
	Epsilon float64 `json:"eps_s"`
	HitRate float64 `json:"hit_rate"`
}

// SaturationResult is the outcome of a capacity search.
type SaturationResult struct {
	Scenario string  `json:"scenario"`
	Capacity float64 `json:"capacity_rate"` // requests/s at the ε zero-crossing (midpoint of the final bracket)
	Lo       float64 `json:"lo_rate"`       // highest probed rate with ε > 0
	Hi       float64 `json:"hi_rate"`       // lowest probed rate with ε ≤ 0

	Probes []SaturationProbe `json:"probes"`
}

// FindSaturation binary-searches the arrival rate at which the
// scenario's ε crosses zero, holding everything else (topology, request
// count, mix, seed) fixed. tol is the relative width of the final
// bracket (default 0.05 when ≤ 0). All probes reuse the scenario seed:
// the request bodies (apps, targets, deadlines) are then identical
// across probes — only the timeline compresses — so the search bisects
// load, not workload luck.
func FindSaturation(spec Spec, opt RunOptions, tol float64) (SaturationResult, error) {
	if err := spec.Validate(); err != nil {
		return SaturationResult{}, err
	}
	if tol <= 0 {
		tol = 0.05
	}
	rate, err := spec.Arrivals.MeanRate()
	if err != nil {
		return SaturationResult{}, err
	}

	out := SaturationResult{Scenario: spec.Name}
	probe := func(r float64) (float64, error) {
		pt, err := apply(spec, AxisRate, r)
		if err != nil {
			return 0, err
		}
		res, err := runSeeded(pt, spec.Seed, opt)
		if err != nil {
			return 0, err
		}
		if !res.AuditOK {
			return 0, fmt.Errorf("scenario: saturation probe at rate %g failed its audit: %s", r, res.AuditSummary)
		}
		out.Probes = append(out.Probes, SaturationProbe{Rate: r, Epsilon: res.Epsilon, HitRate: res.HitRate})
		return res.Epsilon, nil
	}

	// Bracket the crossing: grow or shrink the rate geometrically until
	// one side of the sign change is on each end.
	eps, err := probe(rate)
	if err != nil {
		return SaturationResult{}, err
	}
	var lo, hi float64 // lo: ε > 0 (under capacity), hi: ε ≤ 0 (over)
	const maxBracket = 20
	if eps > 0 {
		lo = rate
		for i := 0; ; i++ {
			if i == maxBracket {
				return SaturationResult{}, fmt.Errorf("scenario: ε still positive at rate %g — no saturation within %d doublings", rate, maxBracket)
			}
			rate *= 2
			if eps, err = probe(rate); err != nil {
				return SaturationResult{}, err
			}
			if eps <= 0 {
				hi = rate
				break
			}
			lo = rate
		}
	} else {
		hi = rate
		for i := 0; ; i++ {
			if i == maxBracket {
				return SaturationResult{}, fmt.Errorf("scenario: ε non-positive even at rate %g — the grid never catches up", rate)
			}
			rate /= 2
			if eps, err = probe(rate); err != nil {
				return SaturationResult{}, err
			}
			if eps > 0 {
				lo = rate
				break
			}
			hi = rate
		}
	}

	for hi-lo > tol*lo {
		mid := (lo + hi) / 2
		if eps, err = probe(mid); err != nil {
			return SaturationResult{}, err
		}
		if eps > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	out.Lo, out.Hi = lo, hi
	out.Capacity = (lo + hi) / 2
	return out, nil
}

// FormatSaturation renders the search for the terminal.
func FormatSaturation(r SaturationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Saturation search for %s\n\n", r.Scenario)
	fmt.Fprintf(&b, "%10s %10s %9s\n", "rate (/s)", "eps (s)", "hit (%)")
	for _, p := range r.Probes {
		fmt.Fprintf(&b, "%10.3f %10.1f %9.1f\n", p.Rate, p.Epsilon, p.HitRate*100)
	}
	fmt.Fprintf(&b, "\ncapacity ≈ %.3f requests/s (ε crosses zero in [%.3f, %.3f])\n", r.Capacity, r.Lo, r.Hi)
	return b.String()
}
