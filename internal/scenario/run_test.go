package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// smallSpec is a cheap generated-topology scenario used across the run
// tests: nine agents, Poisson arrivals, a reduced GA.
func smallSpec() Spec {
	return Spec{
		Name: "small",
		Seed: 42,
		Topology: TopologySpec{
			Agents:    9,
			Branching: 3,
			Nodes:     8,
		},
		Arrivals: ArrivalSpec{Process: "poisson", Count: 120, Rate: 1.5},
		Policy:   "ga",
		GA:       &GASpec{PopulationSize: 20, MaxGenerations: 10, ConvergenceWindow: 4},
	}
}

func TestRunSmallScenario(t *testing.T) {
	res, err := Run(smallSpec(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agents != 9 || res.Requests != 120 {
		t.Fatalf("shape: agents %d requests %d", res.Agents, res.Requests)
	}
	if res.Completed != 120 {
		t.Fatalf("completed %d of 120", res.Completed)
	}
	if !res.AuditOK {
		t.Fatalf("audit failed:\n%s", res.AuditSummary)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput %v, want positive", res.Throughput)
	}
	if res.HitRate < 0 || res.HitRate > 1 {
		t.Fatalf("hit rate %v outside [0,1]", res.HitRate)
	}
	if res.Span <= 0 {
		t.Fatalf("span %v, want positive", res.Span)
	}
	if res.SlackP99 > res.SlackP50 {
		t.Fatalf("slack tail p99 %v above the median %v", res.SlackP99, res.SlackP50)
	}
}

// stripHost removes the fields that legitimately vary between identical
// runs (host wall-clock time).
func stripHost(r Result) Result {
	r.WallClock = 0
	r.Audit = nil
	return r
}

func TestRunWorkerDeterminism(t *testing.T) {
	spec := smallSpec()
	seq, err := Run(spec, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(spec, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripHost(seq), stripHost(par)) {
		t.Fatalf("scenario results differ across worker widths:\n1: %+v\n4: %+v", stripHost(seq), stripHost(par))
	}
}

func TestSweepDeterminism(t *testing.T) {
	spec := smallSpec()
	spec.Arrivals.Count = 80
	values := []float64{1, 2, 4}
	a, err := Sweep(spec, AxisRate, values, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sweep(spec, AxisRate, values, RunOptions{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(values) || len(b) != len(values) {
		t.Fatalf("sweep lengths %d %d, want %d", len(a), len(b), len(values))
	}
	for i := range a {
		if !reflect.DeepEqual(stripHost(a[i].Result), stripHost(b[i].Result)) {
			t.Fatalf("sweep point %d differs across worker widths", i)
		}
	}
	// Per-point seeds are split off the master up front, so two points
	// never share a stream.
	if a[0].Result.Seed == a[1].Result.Seed {
		t.Fatalf("sweep points share seed %d", a[0].Result.Seed)
	}
}

func TestSweepSeedAxisUsesValueAsSeed(t *testing.T) {
	spec := smallSpec()
	spec.Arrivals.Count = 40
	pts, err := Sweep(spec, AxisSeed, []float64{7, 11}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Result.Seed != 7 || pts[1].Result.Seed != 11 {
		t.Fatalf("seed axis seeds %d %d, want 7 11", pts[0].Result.Seed, pts[1].Result.Seed)
	}
}

func TestSweepAgentsAxisRejectsPreset(t *testing.T) {
	if _, err := Sweep(Fig7(), AxisAgents, []float64{8, 16}, RunOptions{}); err == nil {
		t.Fatal("agents axis over a preset topology accepted")
	}
}

func TestSweepReportFormats(t *testing.T) {
	spec := smallSpec()
	spec.Arrivals.Count = 40
	pts, err := Sweep(spec, AxisRate, []float64{1, 3}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep := SweepReport{Scenario: spec.Name, Axis: AxisRate, Points: pts}

	var jsonBuf, csvBuf strings.Builder
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonBuf.String(), `"eps_s"`) || !strings.Contains(jsonBuf.String(), `"audit_ok"`) {
		t.Fatalf("JSON missing expected fields:\n%s", jsonBuf.String())
	}
	if err := rep.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 points:\n%s", len(lines), csvBuf.String())
	}
	if !strings.HasPrefix(lines[0], "axis,value,agents") {
		t.Fatalf("CSV header: %s", lines[0])
	}
	table := FormatSweep(rep)
	if !strings.Contains(table, "Sweep of small over rate") {
		t.Fatalf("table header missing:\n%s", table)
	}
}

func TestFindSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation search runs many probes")
	}
	spec := smallSpec()
	spec.Arrivals.Count = 150
	res, err := FindSaturation(spec, RunOptions{}, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Lo < res.Hi) || res.Capacity < res.Lo || res.Capacity > res.Hi {
		t.Fatalf("bracket [%v, %v] capacity %v malformed", res.Lo, res.Hi, res.Capacity)
	}
	if res.Hi-res.Lo > 0.10*res.Lo+1e-9 {
		t.Fatalf("bracket [%v, %v] wider than tolerance", res.Lo, res.Hi)
	}
	// The probes must straddle the crossing.
	var sawUnder, sawOver bool
	for _, p := range res.Probes {
		if p.Epsilon > 0 {
			sawUnder = true
		} else {
			sawOver = true
		}
	}
	if !sawUnder || !sawOver {
		t.Fatalf("probes never straddled ε=0: %+v", res.Probes)
	}
}

func TestFindSaturationSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation search runs many probes")
	}
	base := smallSpec()
	base.Arrivals.Count = 150
	caps := make([]float64, 2)
	for i, seed := range []uint64{101, 202} {
		spec := base
		spec.Seed = seed
		res, err := FindSaturation(spec, RunOptions{}, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		caps[i] = res.Capacity
	}
	lo, hi := caps[0], caps[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	// Capacity is a property of the grid, not of the seed: different
	// workload draws shift it a little, not a lot.
	if hi > 1.5*lo {
		t.Fatalf("capacity unstable across seeds: %v vs %v", caps[0], caps[1])
	}
}
