package scenario

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Sweep axes: the one dimension a sweep varies while everything else in
// the spec stays fixed.
const (
	AxisAgents        = "agents"         // generated-topology size
	AxisRate          = "rate"           // long-run arrival rate, requests/s
	AxisRequests      = "requests"       // request count
	AxisDeadlineScale = "deadline_scale" // deadline-tightness multiplier
	AxisSeed          = "seed"           // replication axis
)

// SweepPoint is one run of a sweep.
type SweepPoint struct {
	Axis   string  `json:"axis"`
	Value  float64 `json:"value"`
	Result Result  `json:"result"`
}

// SweepReport is the machine-readable product of a sweep (BENCH_PR4.json
// records one).
type SweepReport struct {
	Scenario string       `json:"scenario"`
	Axis     string       `json:"axis"`
	Points   []SweepPoint `json:"points"`
}

// ParseAxis parses a CLI sweep argument of the form "axis=v1,v2,...".
func ParseAxis(arg string) (axis string, values []float64, err error) {
	axis, list, ok := strings.Cut(arg, "=")
	if !ok || axis == "" || list == "" {
		return "", nil, fmt.Errorf("scenario: sweep %q not of the form axis=v1,v2,...", arg)
	}
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return "", nil, fmt.Errorf("scenario: sweep value %q: %w", f, err)
		}
		values = append(values, v)
	}
	return axis, values, nil
}

// apply returns the spec with the axis set to value.
func apply(spec Spec, axis string, value float64) (Spec, error) {
	out := spec
	switch axis {
	case AxisAgents:
		if out.Topology.Preset != "" {
			return Spec{}, fmt.Errorf("scenario: the %s axis needs a generated topology, not preset %q", axis, out.Topology.Preset)
		}
		if value < 1 || value != float64(int(value)) {
			return Spec{}, fmt.Errorf("scenario: agent count %g must be a positive integer", value)
		}
		out.Topology.Agents = int(value)
	case AxisRate:
		arr, err := out.Arrivals.WithMeanRate(value)
		if err != nil {
			return Spec{}, err
		}
		out.Arrivals = arr
	case AxisRequests:
		if value < 1 || value != float64(int(value)) {
			return Spec{}, fmt.Errorf("scenario: request count %g must be a positive integer", value)
		}
		out.Arrivals.Count = int(value)
	case AxisDeadlineScale:
		if value <= 0 {
			return Spec{}, fmt.Errorf("scenario: deadline scale %g must be positive", value)
		}
		out.DeadlineScale = value
	case AxisSeed:
		if value < 0 || value != float64(uint64(value)) {
			return Spec{}, fmt.Errorf("scenario: seed %g must be a non-negative integer", value)
		}
		out.Seed = uint64(value)
	default:
		return Spec{}, fmt.Errorf("scenario: unknown sweep axis %q (want %s, %s, %s, %s or %s)",
			axis, AxisAgents, AxisRate, AxisRequests, AxisDeadlineScale, AxisSeed)
	}
	return out, nil
}

// Sweep runs the scenario once per axis value. Every point gets its own
// RNG stream split off the scenario seed up front — before any point
// runs — so results are a pure function of (spec, axis, values): the
// same no matter how wide the GA worker pool is or in what order the
// points would execute. The seed axis is the exception: there the value
// *is* the seed, by definition.
func Sweep(spec Spec, axis string, values []float64, opt RunOptions) ([]SweepPoint, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("scenario: empty sweep")
	}
	master := sim.NewRNG(spec.Seed)
	seeds := make([]uint64, len(values))
	for i := range seeds {
		seeds[i] = master.Split().Uint64()
	}
	out := make([]SweepPoint, len(values))
	for i, v := range values {
		pt, err := apply(spec, axis, v)
		if err != nil {
			return nil, err
		}
		seed := seeds[i]
		if axis == AxisSeed {
			seed = pt.Seed
		}
		res, err := runSeeded(pt, seed, opt)
		if err != nil {
			return nil, fmt.Errorf("scenario: sweep %s=%g: %w", axis, v, err)
		}
		out[i] = SweepPoint{Axis: axis, Value: v, Result: res}
	}
	return out, nil
}

// WriteJSON renders a sweep report as indented JSON.
func (r SweepReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteCSV renders the sweep as one row per point.
func (r SweepReport) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"axis", "value", "agents", "requests", "completed", "span_s",
		"eps_s", "ups_pct", "beta_pct", "hit_rate",
		"slack_p50_s", "slack_p95_s", "slack_p99_s", "throughput_s",
		"mean_hops", "max_hops", "fallbacks", "wall_clock_s", "audit_ok",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, p := range r.Points {
		res := p.Result
		row := []string{
			p.Axis, f(p.Value),
			strconv.Itoa(res.Agents), strconv.Itoa(res.Requests), strconv.Itoa(res.Completed), f(res.Span),
			f(res.Epsilon), f(res.Upsilon), f(res.Beta), f(res.HitRate),
			f(res.SlackP50), f(res.SlackP95), f(res.SlackP99), f(res.Throughput),
			f(res.MeanHops), strconv.Itoa(res.MaxHops), strconv.Itoa(res.Fallbacks),
			f(res.WallClock), strconv.FormatBool(res.AuditOK),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// FormatSweep renders a sweep as a human-readable table.
func FormatSweep(r SweepReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sweep of %s over %s\n\n", r.Scenario, r.Axis)
	fmt.Fprintf(&b, "%12s %7s %9s %9s %8s %8s %8s %9s %9s %9s %10s %8s %6s\n",
		r.Axis, "agents", "requests", "eps (s)", "ups (%)", "beta (%)", "hit (%)",
		"p50 (s)", "p95 (s)", "p99 (s)", "thru (/s)", "wall (s)", "audit")
	for _, p := range r.Points {
		res := p.Result
		verdict := "ok"
		if !res.AuditOK {
			verdict = fmt.Sprintf("%d!", res.AuditViolations)
		}
		fmt.Fprintf(&b, "%12g %7d %9d %9.1f %8.1f %8.1f %8.1f %9.1f %9.1f %9.1f %10.2f %8.1f %6s\n",
			p.Value, res.Agents, res.Requests, res.Epsilon, res.Upsilon, res.Beta,
			res.HitRate*100, res.SlackP50, res.SlackP95, res.SlackP99,
			res.Throughput, res.WallClock, verdict)
	}
	return b.String()
}
