package scenario

import (
	"reflect"
	"testing"
)

// megaShapeSpec is a CI-sized shrink of examples/scenarios/mega.json:
// the same shape — generated tree, mixed per-resource node counts,
// fifo-fast policy, relaxed deadlines, Poisson arrivals — with two
// orders of magnitude fewer agents and requests so it runs in a
// test-suite budget.
func megaShapeSpec() Spec {
	return Spec{
		Name: "mega-ci",
		Seed: 2003,
		Topology: TopologySpec{
			Agents:    48,
			Branching: 3,
			NodeMix:   []int{16, 8, 8, 4},
		},
		Arrivals:      ArrivalSpec{Process: "poisson", Count: 600, Rate: 20},
		Policy:        "fifo-fast",
		DeadlineScale: 4,
	}
}

// TestMegaShapeWorkerWidthStability pins the tentpole guarantee on the
// mega-grid shape: the sharded step loop and batched exchanges must
// produce identical results — including the executed-event count — at
// every worker width, and the streaming audit must come back clean.
func TestMegaShapeWorkerWidthStability(t *testing.T) {
	base, err := Run(megaShapeSpec(), RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !base.AuditOK {
		t.Fatalf("audit failed at width 1:\n%s", base.AuditSummary)
	}
	if base.Completed == 0 || base.SimEvents == 0 {
		t.Fatalf("degenerate run: completed %d, sim events %d", base.Completed, base.SimEvents)
	}
	for _, w := range []int{2, 4} {
		got, err := Run(megaShapeSpec(), RunOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		// SimEvents is deliberately part of the comparison: a worker
		// width that schedules extra (or fewer) simulator events is a
		// determinism bug even if the aggregate metrics agree.
		if !reflect.DeepEqual(stripHost(base), stripHost(got)) {
			t.Fatalf("mega-shape results differ between widths 1 and %d:\n1: %+v\n%d: %+v",
				w, stripHost(base), w, stripHost(got))
		}
	}
}
