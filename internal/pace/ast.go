package pace

import (
	"fmt"
	"strings"
)

// Expr is a node in a PSL expression tree.
type Expr interface {
	// String renders the expression as PSL source.
	String() string
	eval(env *Env) (Value, error)
}

// Value is a PSL runtime value: a number or an array of values.
type Value struct {
	Num float64
	Arr []Value // non-nil means array
}

// IsArray reports whether v holds an array.
func (v Value) IsArray() bool { return v.Arr != nil }

// NumValue wraps a float64.
func NumValue(f float64) Value { return Value{Num: f} }

func (v Value) String() string {
	if !v.IsArray() {
		return trimFloat(v.Num)
	}
	parts := make([]string, len(v.Arr))
	for i, e := range v.Arr {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Val  float64
	Line int
	Col  int
}

func (n *NumberLit) String() string { return trimFloat(n.Val) }

// Ident references a parameter or let-binding.
type Ident struct {
	Name string
	Line int
	Col  int
}

func (id *Ident) String() string { return id.Name }

// ArrayLit is an array literal such as [50, 40, 30].
type ArrayLit struct {
	Elems []Expr
	Line  int
	Col   int
}

func (a *ArrayLit) String() string {
	parts := make([]string, len(a.Elems))
	for i, e := range a.Elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// IndexExpr selects an element of an array; indices are zero-based.
type IndexExpr struct {
	Base  Expr
	Index Expr
	Line  int
	Col   int
}

func (ix *IndexExpr) String() string {
	return fmt.Sprintf("%s[%s]", ix.Base, ix.Index)
}

// UnaryExpr is negation or logical not.
type UnaryExpr struct {
	Op   string // "-" or "!"
	X    Expr
	Line int
	Col  int
}

func (u *UnaryExpr) String() string { return u.Op + u.X.String() }

// BinaryExpr is an infix arithmetic, comparison or logical expression.
type BinaryExpr struct {
	Op   string
	L, R Expr
	Line int
	Col  int
}

func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// CallExpr invokes a builtin function such as min, ceil or if.
type CallExpr struct {
	Fn   string
	Args []Expr
	Line int
	Col  int
}

func (c *CallExpr) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Fn, strings.Join(parts, ", "))
}

// ParamDecl declares a model parameter, optionally with a default value.
type ParamDecl struct {
	Name    string
	Default Expr // nil when the parameter is required
}

// LetDecl binds a name to an expression; lets evaluate in declaration
// order and may reference params and earlier lets.
type LetDecl struct {
	Name string
	Expr Expr
}

// AppModel is a parsed PSL application model: the σ_j of the paper. Its
// Time expression yields the predicted execution time in seconds on the
// reference platform for a given parameter binding (the processor count n,
// at minimum).
type AppModel struct {
	Name       string
	Params     []ParamDecl
	Lets       []LetDecl
	Time       Expr       // plain seconds expression; optional when Steps exist
	Steps      []StepDecl // layered computation/communication components
	DeadlineLo float64    // Table 1 requirement domain lower bound (seconds)
	DeadlineHi float64    // Table 1 requirement domain upper bound (seconds)
	Source     string     // original PSL text
}

// HasDeadlineDomain reports whether the model declared a deadline domain.
func (m *AppModel) HasDeadlineDomain() bool {
	return m.DeadlineLo != 0 || m.DeadlineHi != 0
}

func (m *AppModel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "application %s {\n", m.Name)
	for _, p := range m.Params {
		if p.Default != nil {
			fmt.Fprintf(&b, "  param %s = %s;\n", p.Name, p.Default)
		} else {
			fmt.Fprintf(&b, "  param %s;\n", p.Name)
		}
	}
	if m.HasDeadlineDomain() {
		fmt.Fprintf(&b, "  deadline = [%s, %s];\n", trimFloat(m.DeadlineLo), trimFloat(m.DeadlineHi))
	}
	for _, l := range m.Lets {
		fmt.Fprintf(&b, "  let %s = %s;\n", l.Name, l.Expr)
	}
	for _, st := range m.Steps {
		fmt.Fprintf(&b, "  step %s {", st.Name)
		for i, f := range st.order {
			if i == 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s = %s; ", f, st.Fields[f])
		}
		b.WriteString("}\n")
	}
	if m.Time != nil {
		fmt.Fprintf(&b, "  time = %s;\n", m.Time)
	}
	b.WriteString("}")
	return b.String()
}
