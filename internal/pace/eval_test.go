package pace

import (
	"strings"
	"testing"
	"testing/quick"
)

func evalExprString(t *testing.T, src string) (float64, error) {
	t.Helper()
	m, err := ParseModel("application e { time = " + src + "; }")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return m.Eval(nil)
}

func TestEvalRuntimeErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"1 / 0", "division by zero"},
		{"1 % 0", "modulo by zero"},
		{"[1, 2][5]", "out of range"},
		{"[1, 2][-1]", "out of range"},
		{"[1, 2][0.5]", "not an integer"},
		{"5[0]", "cannot index a number"},
		{"[1] + 2", "requires numbers"},
		{"-[1]", "requires a number"},
		{"[1] && 1", "requires numbers"},
		{"min([1], 2)", "must be a number"},
		{"len(5)", "must be an array"},
		{"sum(5)", "must be an array"},
		{"sum([1, [2]])", "not a number"},
		{"if([1], 2, 3)", "condition must be a number"},
		{"min(1)", "wrong number of arguments"},
		{"ceil(1, 2)", "wrong number of arguments"},
		{"nosuchvar", "undefined name"},
		{"log(0) + 1", "yielded"},   // -Inf propagates to the time check
		{"sqrt(-1) + 1", "yielded"}, // NaN propagates to the time check
		{"0 - 5", "negative predicted time"},
	}
	for _, c := range cases {
		_, err := evalExprString(t, c.src)
		if err == nil {
			t.Errorf("eval(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("eval(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestEvalMissingRequiredParam(t *testing.T) {
	m := mustParse(t, "application m { param n; time = n; }")
	if _, err := m.Eval(nil); err == nil || !strings.Contains(err.Error(), "missing required parameter") {
		t.Fatalf("err = %v, want missing-parameter error", err)
	}
}

func TestEvalRejectsUnknownBinding(t *testing.T) {
	m := mustParse(t, "application m { param n; time = n; }")
	if _, err := m.Eval(map[string]float64{"n": 1, "bogus": 2}); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("err = %v, want unknown-parameter error", err)
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// The right operand divides by zero; short-circuiting must avoid it.
	v, err := evalExprString(t, "if(0 && (1 / 0), 1, 2)")
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("short-circuit && = %v, want 2", v)
	}
	v, err = evalExprString(t, "if(1 || (1 / 0), 3, 4)")
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("short-circuit || = %v, want 3", v)
	}
}

func TestEvalLetShadowsNothing(t *testing.T) {
	// A let may not redeclare a param; verified at parse time.
	_, err := ParseModel("application s { param n; let n = 2; time = n; }")
	if err == nil {
		t.Fatal("let shadowing a param parsed successfully")
	}
}

func TestEnvLookupChain(t *testing.T) {
	parent := NewEnv(nil)
	parent.Bind("a", NumValue(1))
	child := NewEnv(parent)
	child.Bind("b", NumValue(2))
	if v, ok := child.Lookup("a"); !ok || v.Num != 1 {
		t.Fatalf("child lookup of parent binding = %v, %v", v, ok)
	}
	if v, ok := child.Lookup("b"); !ok || v.Num != 2 {
		t.Fatalf("child lookup of own binding = %v, %v", v, ok)
	}
	if _, ok := parent.Lookup("b"); ok {
		t.Fatal("parent sees child binding")
	}
	if _, ok := child.Lookup("zzz"); ok {
		t.Fatal("lookup of unbound name succeeded")
	}
	child.Bind("a", NumValue(9))
	if v, _ := child.Lookup("a"); v.Num != 9 {
		t.Fatalf("child rebinding not visible: %v", v)
	}
	if v, _ := parent.Lookup("a"); v.Num != 1 {
		t.Fatalf("child rebinding leaked to parent: %v", v)
	}
}

// Property: for all integer a, b the PSL arithmetic operators agree with Go.
func TestEvalArithmeticAgreesWithGo(t *testing.T) {
	prop := func(aRaw, bRaw int16) bool {
		a, b := float64(aRaw%1000), float64(bRaw%1000)
		m, err := ParseModel("application q { param a; param b; time = abs(a + b * 2 - a * b); }")
		if err != nil {
			return false
		}
		got, err := m.Eval(map[string]float64{"a": a, "b": b})
		if err != nil {
			return false
		}
		want := a + b*2 - a*b
		if want < 0 {
			want = -want
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestValueString(t *testing.T) {
	v := Value{Arr: []Value{NumValue(1), NumValue(2.5)}}
	if got := v.String(); got != "[1, 2.5]" {
		t.Fatalf("array String() = %q", got)
	}
	if got := NumValue(3).String(); got != "3" {
		t.Fatalf("num String() = %q", got)
	}
}

func TestEmptyArrayLiteral(t *testing.T) {
	v, err := evalExprString(t, "len([])")
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("len([]) = %v", v)
	}
}
