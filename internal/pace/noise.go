package pace

// The paper's test mode assumes PACE predictions are exact (§3.2) and
// names "the impact of the accuracy of the PACE predictive data on grid
// load balancing and scheduling" as future work (§5). NoiseModel
// implements that study: a deterministic multiplicative error applied to
// a task's actual execution time while schedulers keep planning with the
// unperturbed prediction.
//
// The error for a task is a pure function of (seed, task key), so a run
// remains reproducible and the same task sees the same reality regardless
// of which resource executes it.

// NoiseModel perturbs actual execution times relative to predictions.
type NoiseModel struct {
	// Rel is the maximum relative scatter: the unbiased factor is drawn
	// uniformly from [1-Rel, 1+Rel]. Rel 0 reproduces exact test mode.
	// Values >= 1 are clamped so times stay positive.
	Rel float64
	// Bias shifts every actual time multiplicatively: +0.2 means the
	// models are systematically 20% optimistic (real runs take longer
	// than predicted), the damaging direction for deadline scheduling.
	Bias float64
	Seed uint64
}

// Enabled reports whether the model perturbs anything.
func (m NoiseModel) Enabled() bool { return m.Rel != 0 || m.Bias != 0 }

// Factor returns the multiplicative error for the task key.
func (m NoiseModel) Factor(taskKey uint64) float64 {
	rel := m.Rel
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.95 {
		rel = 0.95 // keep actual times strictly positive
	}
	bias := 1 + m.Bias
	if bias < 0.05 {
		bias = 0.05
	}
	if rel == 0 {
		return bias
	}
	// SplitMix64 over (seed, key): deterministic, well mixed.
	z := m.Seed ^ (taskKey * 0x9e3779b97f4a7c15)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / (1 << 53) // uniform [0, 1)
	return bias * (1 - rel + 2*rel*u)
}

// Apply returns the actual execution time for a predicted duration.
func (m NoiseModel) Apply(predicted float64, taskKey uint64) float64 {
	return predicted * m.Factor(taskKey)
}
