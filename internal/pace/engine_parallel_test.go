package pace

import (
	"sync"
	"testing"
)

// TestEngineConcurrentPredictExactStats hammers one engine from many
// goroutines and asserts the lock-free fast path keeps the counters
// exact: every call is either a hit or a miss, each unique
// (app, hardware, nprocs) key is evaluated exactly once, and all
// goroutines observe identical values.
func TestEngineConcurrentPredictExactStats(t *testing.T) {
	lib := CaseStudyLibrary()
	models := lib.Models()
	engine := NewEngine()
	hws := []Hardware{SGIOrigin2000, SunUltra10, SunUltra5}
	const workers = 8
	const maxProcs = 16

	// Reference values from a private sequential engine.
	ref := NewEngine()
	want := map[[2]string]map[int]float64{}
	for _, m := range models {
		for _, hw := range hws {
			vals := map[int]float64{}
			for n := 1; n <= maxProcs; n++ {
				v, err := ref.Predict(m, hw, n)
				if err != nil {
					t.Fatal(err)
				}
				vals[n] = v
			}
			want[[2]string{m.Name, hw.Name}] = vals
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	calls := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for mi, m := range models {
					for hi, hw := range hws {
						// Stagger the traversal per goroutine so different
						// workers race on different keys.
						n := 1 + (w+mi+hi+round)%maxProcs
						v, err := engine.Predict(m, hw, n)
						if err != nil {
							errs <- err
							return
						}
						if v != want[[2]string{m.Name, hw.Name}][n] {
							t.Errorf("concurrent Predict(%s, %s, %d) = %g, want %g",
								m.Name, hw.Name, n, v, want[[2]string{m.Name, hw.Name}][n])
						}
					}
				}
			}
		}(w)
		calls += 3 * len(models) * len(hws)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := engine.Stats()
	if got := st.CacheHits + st.CacheMisses; got != uint64(calls) {
		t.Errorf("hits+misses = %d, want the %d calls made", got, calls)
	}
	if st.CacheMisses != st.Evaluations {
		t.Errorf("misses = %d but evaluations = %d; each unique key must be evaluated exactly once",
			st.CacheMisses, st.Evaluations)
	}
	if int(st.Evaluations) != engine.CacheLen() {
		t.Errorf("evaluations = %d but cache holds %d entries", st.Evaluations, engine.CacheLen())
	}
}

// TestEngineFastPathAfterWarmup asserts a warm engine answers from the
// sealed table: no further misses or evaluations, only hits.
func TestEngineFastPathAfterWarmup(t *testing.T) {
	lib := CaseStudyLibrary()
	m, _ := lib.Lookup("fft")
	engine := NewEngine()
	for n := 1; n <= 16; n++ {
		if _, err := engine.Predict(m, SunUltra1, n); err != nil {
			t.Fatal(err)
		}
	}
	warm := engine.Stats()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 1; n <= 16; n++ {
				for i := 0; i < 50; i++ {
					if _, err := engine.Predict(m, SunUltra1, n); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := engine.Stats()
	if st.Evaluations != warm.Evaluations || st.CacheMisses != warm.CacheMisses {
		t.Errorf("warm engine evaluated again: evals %d -> %d, misses %d -> %d",
			warm.Evaluations, st.Evaluations, warm.CacheMisses, st.CacheMisses)
	}
	if wantHits := warm.CacheHits + 4*16*50; st.CacheHits != wantHits {
		t.Errorf("hits = %d, want %d", st.CacheHits, wantHits)
	}
}

// TestEngineResetStatsKeepsCache mirrors the documented contract with the
// new atomic counters.
func TestEngineResetStatsKeepsCache(t *testing.T) {
	lib := CaseStudyLibrary()
	m, _ := lib.Lookup("cpi")
	engine := NewEngine()
	if _, err := engine.Predict(m, SunUltra5, 4); err != nil {
		t.Fatal(err)
	}
	engine.ResetStats()
	if st := engine.Stats(); st != (EvalStats{}) {
		t.Fatalf("stats after reset = %+v", st)
	}
	if engine.CacheLen() != 1 {
		t.Fatalf("cache len after reset = %d, want 1", engine.CacheLen())
	}
	if _, err := engine.Predict(m, SunUltra5, 4); err != nil {
		t.Fatal(err)
	}
	if st := engine.Stats(); st.CacheHits != 1 || st.Evaluations != 0 {
		t.Fatalf("post-reset predict should hit the retained cache: %+v", st)
	}
}
