package pace

import (
	"fmt"
	"sort"
)

// Hardware is the ρ_i of the paper: a static resource model for one
// platform. The paper's PACE resource models are benchmark-derived and
// static (§1); here a single relative speed factor against the reference
// platform (SGIOrigin2000) captures the same information. Predictions for
// other platforms "follow a similar trend" (Table 1 caption), which is
// exactly what a multiplicative factor produces.
type Hardware struct {
	Name   string
	Factor float64 // execution time multiplier relative to the reference platform
}

// Valid reports whether the hardware model is usable for prediction.
func (h Hardware) Valid() error {
	if h.Name == "" {
		return fmt.Errorf("pace: hardware model has empty name")
	}
	if h.Factor <= 0 {
		return fmt.Errorf("pace: hardware model %q has non-positive factor %g", h.Name, h.Factor)
	}
	return nil
}

// The platforms of the case study (§4.1, Fig. 7), ordered from most to
// least powerful: SGI Origin 2000, Sun Ultra 10, Sun Ultra 5, Sun Ultra 1,
// Sun SPARCstation 2. The factors are synthetic (the paper does not
// publish its resource models) but preserve that ordering.
var (
	SGIOrigin2000     = Hardware{Name: "SGIOrigin2000", Factor: 1.0}
	SunUltra10        = Hardware{Name: "SunUltra10", Factor: 1.4}
	SunUltra5         = Hardware{Name: "SunUltra5", Factor: 2.0}
	SunUltra1         = Hardware{Name: "SunUltra1", Factor: 3.0}
	SunSPARCstation2  = Hardware{Name: "SunSPARCstation2", Factor: 6.0}
	ReferenceHardware = SGIOrigin2000
)

var hardwareRegistry = map[string]Hardware{
	SGIOrigin2000.Name:    SGIOrigin2000,
	SunUltra10.Name:       SunUltra10,
	SunUltra5.Name:        SunUltra5,
	SunUltra1.Name:        SunUltra1,
	SunSPARCstation2.Name: SunSPARCstation2,
}

// LookupHardware returns the built-in hardware model with the given name.
func LookupHardware(name string) (Hardware, bool) {
	h, ok := hardwareRegistry[name]
	return h, ok
}

// HardwareNames lists the built-in hardware model names sorted by
// increasing Factor (fastest first), with name as tie-break.
func HardwareNames() []string {
	names := make([]string, 0, len(hardwareRegistry))
	for n := range hardwareRegistry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := hardwareRegistry[names[i]], hardwareRegistry[names[j]]
		if a.Factor != b.Factor {
			return a.Factor < b.Factor
		}
		return a.Name < b.Name
	})
	return names
}
