package pace

import (
	"strings"
	"testing"
)

func TestLexBasicTokens(t *testing.T) {
	toks, err := LexAll("application foo { time = 1 + 2.5; }")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []TokenKind{TokKeyword, TokIdent, TokPunct, TokKeyword, TokPunct, TokNumber, TokOp, TokNumber, TokPunct, TokPunct}
	texts := []string{"application", "foo", "{", "time", "=", "1", "+", "2.5", ";", "}"}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, tok := range toks {
		if tok.Kind != kinds[i] || tok.Text != texts[i] {
			t.Fatalf("token %d = {%v %q}, want {%v %q}", i, tok.Kind, tok.Text, kinds[i], texts[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":      0,
		"42":     42,
		"3.5":    3.5,
		".5":     0.5,
		"1e3":    1000,
		"2.5e-1": 0.25,
		"1E+2":   100,
	}
	for src, want := range cases {
		toks, err := LexAll(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if len(toks) != 1 || toks[0].Kind != TokNumber || toks[0].Num != want {
			t.Fatalf("%q lexed to %v, want number %v", src, toks, want)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := LexAll("// leading comment\n1 // trailing\n// only comment\n2")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 2 || toks[0].Num != 1 || toks[1].Num != 2 {
		t.Fatalf("comment handling produced %v", toks)
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % < <= > >= == != && || !"
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Fields(src)
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, tok := range toks {
		if tok.Kind != TokOp || tok.Text != want[i] {
			t.Fatalf("token %d = {%v %q}, want operator %q", i, tok.Kind, tok.Text, want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("token a at %d:%d, want 1:1", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Fatalf("token bb at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"$", "a & b", "a | b", "#", "\"str\""} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) succeeded, want error", src)
		}
	}
}

func TestLexErrorHasPosition(t *testing.T) {
	_, err := LexAll("abc\n  $")
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if pe.Line != 2 || pe.Col != 3 {
		t.Fatalf("error at %d:%d, want 2:3", pe.Line, pe.Col)
	}
	if !strings.Contains(err.Error(), "psl:2:3") {
		t.Fatalf("error message %q lacks position", err.Error())
	}
}

func TestLexKeywordsVsIdents(t *testing.T) {
	toks, err := LexAll("application param let time deadline apples lettuce")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if toks[i].Kind != TokKeyword {
			t.Fatalf("%q lexed as %v, want keyword", toks[i].Text, toks[i].Kind)
		}
	}
	for i := 5; i < 7; i++ {
		if toks[i].Kind != TokIdent {
			t.Fatalf("%q lexed as %v, want identifier", toks[i].Text, toks[i].Kind)
		}
	}
}
