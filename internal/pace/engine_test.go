package pace

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestEnginePredictReferencePlatform(t *testing.T) {
	e := NewEngine()
	lib := CaseStudyLibrary()
	sweep, _ := lib.Lookup("sweep3d")
	v, err := e.Predict(sweep, SGIOrigin2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != 25 {
		t.Fatalf("sweep3d on 4 reference procs = %v, want 25", v)
	}
}

func TestEnginePredictScalesByHardwareFactor(t *testing.T) {
	e := NewEngine()
	lib := CaseStudyLibrary()
	fft, _ := lib.Lookup("fft")
	ref, err := e.Predict(fft, SGIOrigin2000, 8)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := e.Predict(fft, SunSPARCstation2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if want := ref * SunSPARCstation2.Factor; slow != want {
		t.Fatalf("SPARCstation prediction = %v, want %v", slow, want)
	}
}

func TestEngineCacheHitAvoidsReEvaluation(t *testing.T) {
	e := NewEngine()
	lib := CaseStudyLibrary()
	m, _ := lib.Lookup("jacobi")
	for i := 0; i < 10; i++ {
		if _, err := e.Predict(m, SunUltra5, 4); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Evaluations != 1 {
		t.Fatalf("evaluations = %d, want 1 (cache must absorb repeats)", s.Evaluations)
	}
	if s.CacheHits != 9 || s.CacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 9/1", s.CacheHits, s.CacheMisses)
	}
	if e.CacheLen() != 1 {
		t.Fatalf("cache holds %d entries, want 1", e.CacheLen())
	}
}

func TestEngineWithoutCacheReEvaluates(t *testing.T) {
	e := NewEngineWithoutCache()
	lib := CaseStudyLibrary()
	m, _ := lib.Lookup("jacobi")
	for i := 0; i < 10; i++ {
		if _, err := e.Predict(m, SunUltra5, 4); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Stats()
	if s.Evaluations != 10 {
		t.Fatalf("evaluations = %d, want 10 without cache", s.Evaluations)
	}
	if e.CacheEnabled() {
		t.Fatal("CacheEnabled() = true for cacheless engine")
	}
	if e.CacheLen() != 0 {
		t.Fatalf("cacheless engine stored %d entries", e.CacheLen())
	}
}

func TestEngineCacheKeyDiscriminates(t *testing.T) {
	e := NewEngine()
	lib := CaseStudyLibrary()
	a, _ := lib.Lookup("fft")
	b, _ := lib.Lookup("cpi")
	_, _ = e.Predict(a, SGIOrigin2000, 4)
	_, _ = e.Predict(a, SunUltra1, 4)
	_, _ = e.Predict(a, SGIOrigin2000, 5)
	_, _ = e.Predict(b, SGIOrigin2000, 4)
	if e.CacheLen() != 4 {
		t.Fatalf("cache holds %d entries, want 4 distinct", e.CacheLen())
	}
}

func TestEnginePredictErrors(t *testing.T) {
	e := NewEngine()
	lib := CaseStudyLibrary()
	m, _ := lib.Lookup("fft")
	if _, err := e.Predict(nil, SGIOrigin2000, 1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := e.Predict(m, Hardware{}, 1); err == nil {
		t.Error("invalid hardware accepted")
	}
	if _, err := e.Predict(m, Hardware{Name: "x", Factor: -1}, 1); err == nil {
		t.Error("negative factor accepted")
	}
	if _, err := e.Predict(m, SGIOrigin2000, 0); err == nil {
		t.Error("zero processors accepted")
	}
	if _, err := e.Predict(m, SGIOrigin2000, -3); err == nil {
		t.Error("negative processors accepted")
	}
}

func TestEngineMustPredictPanicsOnError(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("MustPredict with nil model did not panic")
		}
	}()
	e.MustPredict(nil, SGIOrigin2000, 1)
}

func TestEngineResetStats(t *testing.T) {
	e := NewEngine()
	m, _ := CaseStudyLibrary().Lookup("fft")
	_, _ = e.Predict(m, SGIOrigin2000, 1)
	e.ResetStats()
	if s := e.Stats(); s != (EvalStats{}) {
		t.Fatalf("stats after reset = %+v", s)
	}
	// Cache survives the reset.
	if e.CacheLen() != 1 {
		t.Fatalf("cache flushed by ResetStats: %d entries", e.CacheLen())
	}
}

func TestEngineConcurrentPredict(t *testing.T) {
	e := NewEngine()
	lib := CaseStudyLibrary()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, name := range CaseStudyAppNames {
					m, _ := lib.Lookup(name)
					if _, err := e.Predict(m, SunUltra10, i%16+1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	// 7 apps x 16 processor counts reachable.
	if e.CacheLen() != 7*16 {
		t.Fatalf("cache holds %d entries, want %d", e.CacheLen(), 7*16)
	}
}

func TestEvalStatsSimulatedCost(t *testing.T) {
	s := EvalStats{Evaluations: 1000}
	if got := s.SimulatedCost(DefaultEvalCost); got != 10 {
		t.Fatalf("SimulatedCost = %v, want 10 (the §2.2 example)", got)
	}
}

// Property: cached and uncached engines always agree.
func TestEngineCacheTransparency(t *testing.T) {
	cached := NewEngine()
	plain := NewEngineWithoutCache()
	lib := CaseStudyLibrary()
	hw := []Hardware{SGIOrigin2000, SunUltra10, SunUltra5, SunUltra1, SunSPARCstation2}
	prop := func(appIdx, hwIdx, nRaw uint8) bool {
		m, _ := lib.Lookup(CaseStudyAppNames[int(appIdx)%len(CaseStudyAppNames)])
		h := hw[int(hwIdx)%len(hw)]
		n := int(nRaw)%16 + 1
		a, err1 := cached.Predict(m, h, n)
		b, err2 := plain.Predict(m, h, n)
		return err1 == nil && err2 == nil && a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHardwareRegistry(t *testing.T) {
	h, ok := LookupHardware("SunUltra10")
	if !ok || h != SunUltra10 {
		t.Fatalf("LookupHardware(SunUltra10) = %v, %v", h, ok)
	}
	if _, ok := LookupHardware("PDP11"); ok {
		t.Fatal("LookupHardware invented a PDP11")
	}
	names := HardwareNames()
	if len(names) != 5 {
		t.Fatalf("HardwareNames = %v", names)
	}
	if names[0] != "SGIOrigin2000" {
		t.Fatalf("fastest platform = %q, want SGIOrigin2000", names[0])
	}
	if names[len(names)-1] != "SunSPARCstation2" {
		t.Fatalf("slowest platform = %q, want SunSPARCstation2", names[len(names)-1])
	}
	// §4.1 ordering: Origin2000 > Ultra10 > Ultra5 > Ultra1 > SPARCstation2.
	prev := 0.0
	for _, n := range names {
		h, _ := LookupHardware(n)
		if h.Factor <= prev {
			t.Fatalf("hardware factors not strictly increasing: %v", names)
		}
		prev = h.Factor
	}
	if err := (Hardware{Name: "ok", Factor: 1}).Valid(); err != nil {
		t.Fatalf("valid hardware rejected: %v", err)
	}
	if err := (Hardware{Factor: 1}).Valid(); err == nil || !strings.Contains(err.Error(), "empty name") {
		t.Fatalf("empty-name hardware accepted: %v", err)
	}
}
