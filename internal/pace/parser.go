package pace

import "fmt"

// Parser builds an AppModel from PSL source using recursive descent with
// standard operator precedence:
//
//	||  <  &&  <  comparisons  <  + -  <  * / %  <  unary  <  indexing
type Parser struct {
	toks []Token
	pos  int
}

// ParseModel parses a single "application <name> { ... }" definition.
func ParseModel(src string) (*AppModel, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	m, err := p.parseApplication()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.Kind != TokEOF {
		return nil, errAt(t.Line, t.Col, "unexpected %s after application body", t)
	}
	m.Source = src
	return m, nil
}

// SourceFile is the result of parsing one PSL file: application models
// plus parametric hardware models.
type SourceFile struct {
	Models   []*AppModel
	Hardware []*ParametricHardware
}

// ParseSource parses a whole PSL file of application and hardware
// definitions.
func ParseSource(src string) (*SourceFile, error) {
	toks, err := LexAll(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	out := &SourceFile{}
	for p.peek().Kind != TokEOF {
		t := p.peek()
		switch {
		case t.Kind == TokKeyword && t.Text == "application":
			m, err := p.parseApplication()
			if err != nil {
				return nil, err
			}
			m.Source = src
			out.Models = append(out.Models, m)
		case t.Kind == TokKeyword && t.Text == "hardware":
			h, err := p.parseHardware()
			if err != nil {
				return nil, err
			}
			out.Hardware = append(out.Hardware, h)
		default:
			return nil, errAt(t.Line, t.Col, "expected \"application\" or \"hardware\", found %s", t)
		}
	}
	if len(out.Models) == 0 && len(out.Hardware) == 0 {
		return nil, errAt(1, 1, "no definitions found")
	}
	return out, nil
}

// ParseModels parses a sequence of application definitions from one source
// file, as used by model libraries.
func ParseModels(src string) ([]*AppModel, error) {
	sf, err := ParseSource(src)
	if err != nil {
		return nil, err
	}
	if len(sf.Hardware) > 0 {
		return nil, fmt.Errorf("psl: source declares hardware models; use ParseSource")
	}
	if len(sf.Models) == 0 {
		return nil, errAt(1, 1, "no application definitions found")
	}
	return sf.Models, nil
}

// parseHardware parses "hardware <name> { <rate> = <expr>; ... }" with
// constant rate expressions.
func (p *Parser) parseHardware() (*ParametricHardware, error) {
	if _, err := p.expectKeyword("hardware"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	h := &ParametricHardware{Name: name.Text, Rates: map[string]float64{}}
	env := NewEnv(nil)
	for !p.atPunct("}") {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !knownRates[id.Text] {
			return nil, errAt(id.Line, id.Col, "unknown hardware rate %q (known: flops, membw, netlat, netbw)", id.Text)
		}
		if _, dup := h.Rates[id.Text]; dup {
			return nil, errAt(id.Line, id.Col, "duplicate rate %q", id.Text)
		}
		if _, err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		v, err := e.eval(env)
		if err != nil {
			return nil, err
		}
		if v.IsArray() {
			return nil, errAt(id.Line, id.Col, "rate %q must be a number", id.Text)
		}
		if _, err := p.expectPunct(";"); err != nil {
			return nil, err
		}
		h.Rates[id.Text] = v.Num
	}
	p.next() // consume "}"
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

func (p *Parser) peek() Token {
	if p.pos >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos]
}

func (p *Parser) next() Token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *Parser) expectPunct(text string) (Token, error) {
	t := p.next()
	if t.Kind != TokPunct || t.Text != text {
		return t, errAt(t.Line, t.Col, "expected %q, found %s", text, t)
	}
	return t, nil
}

func (p *Parser) expectKeyword(text string) (Token, error) {
	t := p.next()
	if t.Kind != TokKeyword || t.Text != text {
		return t, errAt(t.Line, t.Col, "expected %q, found %s", text, t)
	}
	return t, nil
}

func (p *Parser) expectIdent() (Token, error) {
	t := p.next()
	if t.Kind != TokIdent {
		return t, errAt(t.Line, t.Col, "expected identifier, found %s", t)
	}
	return t, nil
}

func (p *Parser) atPunct(text string) bool {
	t := p.peek()
	return t.Kind == TokPunct && t.Text == text
}

func (p *Parser) atOp(text string) bool {
	t := p.peek()
	return t.Kind == TokOp && t.Text == text
}

func (p *Parser) parseApplication() (*AppModel, error) {
	if _, err := p.expectKeyword("application"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	m := &AppModel{Name: name.Text}
	seen := map[string]bool{}
	for !p.atPunct("}") {
		t := p.peek()
		if t.Kind == TokEOF {
			return nil, errAt(t.Line, t.Col, "unterminated application body for %q", m.Name)
		}
		if t.Kind != TokKeyword {
			return nil, errAt(t.Line, t.Col, "expected statement keyword, found %s", t)
		}
		switch t.Text {
		case "param":
			p.next()
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if seen[id.Text] {
				return nil, errAt(id.Line, id.Col, "duplicate declaration of %q", id.Text)
			}
			seen[id.Text] = true
			var def Expr
			if p.atPunct("=") {
				p.next()
				def, err = p.parseExpr()
				if err != nil {
					return nil, err
				}
			}
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			m.Params = append(m.Params, ParamDecl{Name: id.Text, Default: def})

		case "let":
			p.next()
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if seen[id.Text] {
				return nil, errAt(id.Line, id.Col, "duplicate declaration of %q", id.Text)
			}
			seen[id.Text] = true
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			m.Lets = append(m.Lets, LetDecl{Name: id.Text, Expr: e})

		case "time":
			p.next()
			if m.Time != nil {
				return nil, errAt(t.Line, t.Col, "duplicate time definition")
			}
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			m.Time = e

		case "deadline":
			p.next()
			if _, err := p.expectPunct("="); err != nil {
				return nil, err
			}
			lo, hi, err := p.parseDeadlineDomain()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectPunct(";"); err != nil {
				return nil, err
			}
			m.DeadlineLo, m.DeadlineHi = lo, hi

		case "step":
			p.next()
			st, err := p.parseStep()
			if err != nil {
				return nil, err
			}
			for _, prev := range m.Steps {
				if prev.Name == st.Name {
					return nil, errAt(t.Line, t.Col, "duplicate step %q", st.Name)
				}
			}
			m.Steps = append(m.Steps, st)

		default:
			return nil, errAt(t.Line, t.Col, "unexpected keyword %q in application body", t.Text)
		}
	}
	p.next() // consume "}"
	if m.Time == nil && len(m.Steps) == 0 {
		return nil, fmt.Errorf("psl: application %q has no time definition and no steps", m.Name)
	}
	return m, nil
}

// parseStep parses "<name> { <field> = <expr>; ... }" (the step keyword is
// already consumed).
func (p *Parser) parseStep() (StepDecl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return StepDecl{}, err
	}
	if _, err := p.expectPunct("{"); err != nil {
		return StepDecl{}, err
	}
	st := StepDecl{Name: name.Text, Fields: map[string]Expr{}}
	for !p.atPunct("}") {
		id, err := p.expectIdent()
		if err != nil {
			return StepDecl{}, err
		}
		if !knownFields[id.Text] {
			return StepDecl{}, errAt(id.Line, id.Col, "unknown step field %q (known: flops, mem, bytes, messages, seconds)", id.Text)
		}
		if _, dup := st.Fields[id.Text]; dup {
			return StepDecl{}, errAt(id.Line, id.Col, "duplicate field %q in step %q", id.Text, st.Name)
		}
		if _, err := p.expectPunct("="); err != nil {
			return StepDecl{}, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return StepDecl{}, err
		}
		if _, err := p.expectPunct(";"); err != nil {
			return StepDecl{}, err
		}
		st.Fields[id.Text] = e
		st.order = append(st.order, id.Text)
	}
	p.next() // consume "}"
	if len(st.Fields) == 0 {
		return StepDecl{}, fmt.Errorf("psl: step %q declares no cost fields", st.Name)
	}
	return st, nil
}

// parseDeadlineDomain parses "[lo, hi]" with constant numeric bounds.
func (p *Parser) parseDeadlineDomain() (lo, hi float64, err error) {
	open, err := p.expectPunct("[")
	if err != nil {
		return 0, 0, err
	}
	loE, err := p.parseExpr()
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.expectPunct(","); err != nil {
		return 0, 0, err
	}
	hiE, err := p.parseExpr()
	if err != nil {
		return 0, 0, err
	}
	if _, err := p.expectPunct("]"); err != nil {
		return 0, 0, err
	}
	env := NewEnv(nil)
	loV, err := loE.eval(env)
	if err != nil {
		return 0, 0, err
	}
	hiV, err := hiE.eval(env)
	if err != nil {
		return 0, 0, err
	}
	if loV.IsArray() || hiV.IsArray() {
		return 0, 0, errAt(open.Line, open.Col, "deadline bounds must be numbers")
	}
	if hiV.Num < loV.Num {
		return 0, 0, errAt(open.Line, open.Col, "deadline domain is empty: [%g, %g]", loV.Num, hiV.Num)
	}
	return loV.Num, hiV.Num, nil
}

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atOp("||") {
		op := p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "||", L: l, R: r, Line: op.Line, Col: op.Col}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.atOp("&&") {
		op := p.next()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "&&", L: l, R: r, Line: op.Line, Col: op.Col}
	}
	return l, nil
}

var cmpOps = map[string]bool{"==": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp && cmpOps[t.Text] {
		op := p.next()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op.Text, L: l, R: r, Line: op.Line, Col: op.Col}
	}
	return l, nil
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.next()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op.Text, L: l, R: r, Line: op.Line, Col: op.Col}
	}
	return l, nil
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("%") {
		op := p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op.Text, L: l, R: r, Line: op.Line, Col: op.Col}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.atOp("-") || p.atOp("!") {
		op := p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op.Text, X: x, Line: op.Line, Col: op.Col}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.atPunct("[") {
		open := p.next()
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		e = &IndexExpr{Base: e, Index: idx, Line: open.Line, Col: open.Col}
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch {
	case t.Kind == TokNumber:
		return &NumberLit{Val: t.Num, Line: t.Line, Col: t.Col}, nil

	case t.Kind == TokIdent:
		if p.atPunct("(") {
			p.next()
			var args []Expr
			if !p.atPunct(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.atPunct(",") {
						p.next()
						continue
					}
					break
				}
			}
			if _, err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if _, ok := builtins[t.Text]; !ok {
				return nil, errAt(t.Line, t.Col, "unknown function %q", t.Text)
			}
			return &CallExpr{Fn: t.Text, Args: args, Line: t.Line, Col: t.Col}, nil
		}
		return &Ident{Name: t.Text, Line: t.Line, Col: t.Col}, nil

	case t.Kind == TokPunct && t.Text == "(":
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.Kind == TokPunct && t.Text == "[":
		var elems []Expr
		if !p.atPunct("]") {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.atPunct(",") {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return &ArrayLit{Elems: elems, Line: t.Line, Col: t.Col}, nil
	}
	return nil, errAt(t.Line, t.Col, "expected expression, found %s", t)
}
