package pace

import "repro/internal/telemetry"

// RegisterMetrics exposes the engine's evaluation statistics on a
// telemetry registry as a snapshot-time collector. The Predict fast
// path (lock-free table read + sharded hit counters) is not touched at
// all: the collector pulls Stats() and CacheLen() only when the
// registry is scraped, so an instrumented engine costs exactly as much
// as an uninstrumented one between scrapes.
//
// kv are optional label pairs (e.g. "resource", "S1") distinguishing
// per-node engines in a farm; a process-wide shared engine registers
// with none.
func (e *Engine) RegisterMetrics(reg *telemetry.Registry, kv ...string) {
	if reg == nil || e == nil {
		return
	}
	l := func(name string) string { return telemetry.Label(name, kv...) }
	reg.RegisterCollector(func(set func(string, float64)) {
		s := e.Stats()
		set(l("pace_evaluations"), float64(s.Evaluations))
		set(l("pace_cache_hits"), float64(s.CacheHits))
		set(l("pace_cache_misses"), float64(s.CacheMisses))
		set(l("pace_cache_len"), float64(e.CacheLen()))
		if total := s.CacheHits + s.CacheMisses; total > 0 {
			set(l("pace_cache_hit_ratio"), float64(s.CacheHits)/float64(total))
		} else {
			set(l("pace_cache_hit_ratio"), 0)
		}
	})
}
