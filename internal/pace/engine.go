package pace

import (
	"fmt"
	"sync"
)

// EvalStats records engine activity. The paper motivates the evaluation
// cache with these numbers: a GA population of 50 over 20 tasks needs 1000
// evaluations per generation at ~0.01 s each, so without reuse the GA
// would spend ~10 s per generation (§2.2).
type EvalStats struct {
	Evaluations uint64 // model evaluations actually performed
	CacheHits   uint64
	CacheMisses uint64
}

// SimulatedCost returns the virtual seconds the performed evaluations
// would have cost at perEval seconds each. The paper quotes ~0.01 s per
// PACE evaluation.
func (s EvalStats) SimulatedCost(perEval float64) float64 {
	return float64(s.Evaluations) * perEval
}

// DefaultEvalCost is the per-evaluation cost quoted in §2.2, in seconds.
const DefaultEvalCost = 0.01

type cacheKey struct {
	app    string
	hw     string
	nprocs int
}

// Engine is the PACE evaluation engine: it combines an application model
// with a hardware (resource) model at run time to produce performance data
// (Fig. 1). A demand-driven cache of past evaluations sits between the
// scheduler and the engine (§2.2); the cache can be disabled for the
// ablation study.
//
// Engine is safe for concurrent use.
type Engine struct {
	mu           sync.Mutex
	cache        map[cacheKey]float64
	stats        EvalStats
	cacheEnabled bool
}

// NewEngine returns an engine with the evaluation cache enabled.
func NewEngine() *Engine {
	return &Engine{cache: map[cacheKey]float64{}, cacheEnabled: true}
}

// NewEngineWithoutCache returns an engine that re-evaluates every request,
// used by the cache ablation bench.
func NewEngineWithoutCache() *Engine {
	return &Engine{cache: map[cacheKey]float64{}}
}

// Predict returns t_x(ρ, σ): the predicted execution time in seconds of
// app on nprocs homogeneous nodes of hardware hw. Processor counts above
// the model's natural range are handled by the model itself (the Table 1
// models clamp internally: e.g. sweep3d does not improve past 16
// processors, §4.1).
func (e *Engine) Predict(app *AppModel, hw Hardware, nprocs int) (float64, error) {
	if app == nil {
		return 0, fmt.Errorf("pace: nil application model")
	}
	if err := hw.Valid(); err != nil {
		return 0, err
	}
	if nprocs < 1 {
		return 0, fmt.Errorf("pace: prediction requires at least one processor, got %d", nprocs)
	}
	key := cacheKey{app: app.Name, hw: hw.Name, nprocs: nprocs}

	e.mu.Lock()
	if e.cacheEnabled {
		if v, ok := e.cache[key]; ok {
			e.stats.CacheHits++
			e.mu.Unlock()
			return v, nil
		}
		e.stats.CacheMisses++
	}
	e.mu.Unlock()

	ref, err := app.Eval(map[string]float64{"n": float64(nprocs)})
	if err != nil {
		return 0, err
	}
	v := ref * hw.Factor

	e.mu.Lock()
	e.stats.Evaluations++
	if e.cacheEnabled {
		e.cache[key] = v
	}
	e.mu.Unlock()
	return v, nil
}

// MustPredict is Predict for callers that have already validated their
// inputs (e.g. the inner GA loop over registered models); it panics on
// error.
func (e *Engine) MustPredict(app *AppModel, hw Hardware, nprocs int) float64 {
	v, err := e.Predict(app, hw, nprocs)
	if err != nil {
		panic(err)
	}
	return v
}

// PredictOn returns t_x for a layered application model on nprocs nodes
// of a parametric resource model (EvalOn through the engine's
// demand-driven cache).
func (e *Engine) PredictOn(app *AppModel, hw *ParametricHardware, nprocs int) (float64, error) {
	if app == nil {
		return 0, fmt.Errorf("pace: nil application model")
	}
	if hw == nil {
		return 0, fmt.Errorf("pace: nil hardware model")
	}
	if nprocs < 1 {
		return 0, fmt.Errorf("pace: prediction requires at least one processor, got %d", nprocs)
	}
	key := cacheKey{app: app.Name, hw: "parametric:" + hw.Name, nprocs: nprocs}

	e.mu.Lock()
	if e.cacheEnabled {
		if v, ok := e.cache[key]; ok {
			e.stats.CacheHits++
			e.mu.Unlock()
			return v, nil
		}
		e.stats.CacheMisses++
	}
	e.mu.Unlock()

	v, err := app.EvalOn(map[string]float64{"n": float64(nprocs)}, hw)
	if err != nil {
		return 0, err
	}

	e.mu.Lock()
	e.stats.Evaluations++
	if e.cacheEnabled {
		e.cache[key] = v
	}
	e.mu.Unlock()
	return v, nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EvalStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// ResetStats zeroes the counters without touching the cache.
func (e *Engine) ResetStats() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.stats = EvalStats{}
}

// CacheEnabled reports whether the demand-driven cache is active.
func (e *Engine) CacheEnabled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cacheEnabled
}

// CacheLen returns the number of memoised evaluations.
func (e *Engine) CacheLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}
