package pace

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// EvalStats records engine activity. The paper motivates the evaluation
// cache with these numbers: a GA population of 50 over 20 tasks needs 1000
// evaluations per generation at ~0.01 s each, so without reuse the GA
// would spend ~10 s per generation (§2.2).
type EvalStats struct {
	Evaluations uint64 // model evaluations actually performed
	CacheHits   uint64
	CacheMisses uint64
}

// SimulatedCost returns the virtual seconds the performed evaluations
// would have cost at perEval seconds each. The paper quotes ~0.01 s per
// PACE evaluation.
func (s EvalStats) SimulatedCost(perEval float64) float64 {
	return float64(s.Evaluations) * perEval
}

// DefaultEvalCost is the per-evaluation cost quoted in §2.2, in seconds.
const DefaultEvalCost = 0.01

// hitShards stripes the cache-hit counter so concurrent GA workers do not
// serialise on a single cache line; the shard is picked from the processor
// count, which varies across the inner Build loop.
const hitShards = 16

type paddedCounter struct {
	v atomic.Uint64
	_ [56]byte // pad to a cache line so shards do not false-share
}

// predTable is the engine's immutable prediction table: a dense
// [app][hw][nprocs] matrix reached through two small name-index maps.
// Readers access it through an atomic pointer without taking any lock; a
// miss builds an extended copy under the engine mutex and republishes it
// (copy-on-write), so after warm-up the table is effectively sealed and
// every Predict is lock-free.
type predTable struct {
	apps  map[string]int // application model name -> row
	hws   map[string]int // hardware column key -> column
	vals  [][][]float64  // [app][hw][nprocs-1]; NaN marks an absent entry
	count int            // populated entries
}

// lookup returns the memoised prediction for (app, hw, nprocs), if any.
func (t *predTable) lookup(app, hw string, nprocs int) (float64, bool) {
	ai, ok := t.apps[app]
	if !ok {
		return 0, false
	}
	hi, ok := t.hws[hw]
	if !ok {
		return 0, false
	}
	row := t.vals[ai][hi]
	if nprocs-1 >= len(row) {
		return 0, false
	}
	v := row[nprocs-1]
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// extend returns a copy of t with (app, hw, nprocs) -> v added. Shared
// row slices are cloned only along the touched path, so republishing after
// a miss is cheap relative to the model evaluation it accompanies.
func (t *predTable) extend(app, hw string, nprocs int, v float64) *predTable {
	nt := &predTable{
		apps:  make(map[string]int, len(t.apps)+1),
		hws:   make(map[string]int, len(t.hws)+1),
		count: t.count + 1,
	}
	for k, i := range t.apps {
		nt.apps[k] = i
	}
	for k, i := range t.hws {
		nt.hws[k] = i
	}
	ai, ok := nt.apps[app]
	if !ok {
		ai = len(nt.apps)
		nt.apps[app] = ai
	}
	hi, ok := nt.hws[hw]
	if !ok {
		hi = len(nt.hws)
		nt.hws[hw] = hi
	}
	nt.vals = make([][][]float64, len(nt.apps))
	for a := range nt.vals {
		nt.vals[a] = make([][]float64, len(nt.hws))
		for h := range nt.vals[a] {
			if a < len(t.vals) && h < len(t.vals[a]) {
				nt.vals[a][h] = t.vals[a][h] // immutable rows are shared
			}
		}
	}
	row := nt.vals[ai][hi]
	if nprocs-1 >= len(row) {
		grown := make([]float64, nprocs)
		for i := range grown {
			grown[i] = math.NaN()
		}
		copy(grown, row)
		row = grown
	} else {
		row = append([]float64(nil), row...)
	}
	row[nprocs-1] = v
	nt.vals[ai][hi] = row
	return nt
}

// Engine is the PACE evaluation engine: it combines an application model
// with a hardware (resource) model at run time to produce performance data
// (Fig. 1). A demand-driven cache of past evaluations sits between the
// scheduler and the engine (§2.2); the cache can be disabled for the
// ablation study.
//
// Engine is safe for concurrent use. Cache hits take no lock: they read an
// immutable prediction table through an atomic pointer and bump striped
// atomic counters, so parallel GA cost workers never contend once the
// table is warm. Only the miss path — one model evaluation per unique
// (app, hardware, nprocs) key over the engine's lifetime — serialises on
// the mutex, which also keeps Stats exact: each unique key misses and is
// evaluated exactly once regardless of how many workers race to it.
type Engine struct {
	table atomic.Pointer[predTable]

	hits   [hitShards]paddedCounter
	misses atomic.Uint64
	evals  atomic.Uint64

	mu           sync.Mutex // guards table republication (miss path)
	cacheEnabled bool
}

// NewEngine returns an engine with the evaluation cache enabled.
func NewEngine() *Engine {
	e := &Engine{cacheEnabled: true}
	e.table.Store(&predTable{apps: map[string]int{}, hws: map[string]int{}})
	return e
}

// NewEngineWithoutCache returns an engine that re-evaluates every request,
// used by the cache ablation bench.
func NewEngineWithoutCache() *Engine {
	e := &Engine{}
	e.table.Store(&predTable{apps: map[string]int{}, hws: map[string]int{}})
	return e
}

// parametricPrefix namespaces parametric hardware columns away from static
// factor models in the prediction table.
const parametricPrefix = "parametric:"

// Predict returns t_x(ρ, σ): the predicted execution time in seconds of
// app on nprocs homogeneous nodes of hardware hw. Processor counts above
// the model's natural range are handled by the model itself (the Table 1
// models clamp internally: e.g. sweep3d does not improve past 16
// processors, §4.1).
func (e *Engine) Predict(app *AppModel, hw Hardware, nprocs int) (float64, error) {
	if app == nil {
		return 0, fmt.Errorf("pace: nil application model")
	}
	if err := hw.Valid(); err != nil {
		return 0, err
	}
	if nprocs < 1 {
		return 0, fmt.Errorf("pace: prediction requires at least one processor, got %d", nprocs)
	}
	if e.cacheEnabled {
		if v, ok := e.table.Load().lookup(app.Name, hw.Name, nprocs); ok {
			e.hits[nprocs%hitShards].v.Add(1)
			return v, nil
		}
	}
	return e.miss(app.Name, hw.Name, nprocs, func() (float64, error) {
		ref, err := app.Eval(map[string]float64{"n": float64(nprocs)})
		if err != nil {
			return 0, err
		}
		return ref * hw.Factor, nil
	})
}

// MustPredict is Predict for callers that have already validated their
// inputs (e.g. the inner GA loop over registered models); it panics on
// error.
func (e *Engine) MustPredict(app *AppModel, hw Hardware, nprocs int) float64 {
	v, err := e.Predict(app, hw, nprocs)
	if err != nil {
		panic(err)
	}
	return v
}

// PredictOn returns t_x for a layered application model on nprocs nodes
// of a parametric resource model (EvalOn through the engine's
// demand-driven cache).
func (e *Engine) PredictOn(app *AppModel, hw *ParametricHardware, nprocs int) (float64, error) {
	if app == nil {
		return 0, fmt.Errorf("pace: nil application model")
	}
	if hw == nil {
		return 0, fmt.Errorf("pace: nil hardware model")
	}
	if nprocs < 1 {
		return 0, fmt.Errorf("pace: prediction requires at least one processor, got %d", nprocs)
	}
	key := parametricPrefix + hw.Name
	if e.cacheEnabled {
		if v, ok := e.table.Load().lookup(app.Name, key, nprocs); ok {
			e.hits[nprocs%hitShards].v.Add(1)
			return v, nil
		}
	}
	return e.miss(app.Name, key, nprocs, func() (float64, error) {
		return app.EvalOn(map[string]float64{"n": float64(nprocs)}, hw)
	})
}

// miss is the slow path: it re-checks the table under the mutex (another
// worker may have just published the key), evaluates the model while
// holding the lock so each unique key is evaluated exactly once, and
// republishes an extended immutable table.
func (e *Engine) miss(app, hw string, nprocs int, eval func() (float64, error)) (float64, error) {
	if !e.cacheEnabled {
		// Uncached engines count evaluations only, as before.
		v, err := eval()
		if err != nil {
			return 0, err
		}
		e.evals.Add(1)
		return v, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.table.Load().lookup(app, hw, nprocs); ok {
		e.hits[nprocs%hitShards].v.Add(1)
		return v, nil
	}
	e.misses.Add(1)
	v, err := eval()
	if err != nil {
		return 0, err
	}
	e.evals.Add(1)
	e.table.Store(e.table.Load().extend(app, hw, nprocs, v))
	return v, nil
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() EvalStats {
	var hits uint64
	for i := range e.hits {
		hits += e.hits[i].v.Load()
	}
	return EvalStats{
		Evaluations: e.evals.Load(),
		CacheHits:   hits,
		CacheMisses: e.misses.Load(),
	}
}

// ResetStats zeroes the counters without touching the cache.
func (e *Engine) ResetStats() {
	for i := range e.hits {
		e.hits[i].v.Store(0)
	}
	e.misses.Store(0)
	e.evals.Store(0)
}

// CacheEnabled reports whether the demand-driven cache is active.
func (e *Engine) CacheEnabled() bool { return e.cacheEnabled }

// CacheLen returns the number of memoised evaluations.
func (e *Engine) CacheLen() int { return e.table.Load().count }
