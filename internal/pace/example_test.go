package pace_test

import (
	"fmt"

	"repro/internal/pace"
)

// Predict an application's execution time on a platform: the t_x(ρ, σ)
// every scheduling decision in the system is built on.
func ExampleEngine_Predict() {
	lib := pace.CaseStudyLibrary()
	sweep3d, _ := lib.Lookup("sweep3d")
	engine := pace.NewEngine()

	t4, _ := engine.Predict(sweep3d, pace.SGIOrigin2000, 4)
	t16, _ := engine.Predict(sweep3d, pace.SGIOrigin2000, 16)
	slow, _ := engine.Predict(sweep3d, pace.SunSPARCstation2, 16)
	fmt.Printf("sweep3d on 4 reference nodes: %.0f s\n", t4)
	fmt.Printf("sweep3d on 16 reference nodes: %.0f s\n", t16)
	fmt.Printf("sweep3d on 16 SPARCstation2 nodes: %.0f s\n", slow)
	// Output:
	// sweep3d on 4 reference nodes: 25 s
	// sweep3d on 16 reference nodes: 4 s
	// sweep3d on 16 SPARCstation2 nodes: 24 s
}

// Write a performance model in PSL and evaluate it.
func ExampleParseModel() {
	m, err := pace.ParseModel(`
	  application halve {
	    param n;
	    deadline = [1, 100];
	    time = 64 / n + 2;
	  }`)
	if err != nil {
		panic(err)
	}
	for _, n := range []float64{1, 8, 32} {
		t, _ := m.Eval(map[string]float64{"n": n})
		fmt.Printf("n=%2.0f -> %.0f s\n", n, t)
	}
	// Output:
	// n= 1 -> 66 s
	// n= 8 -> 10 s
	// n=32 -> 4 s
}

// Layered models price compute and communication against per-platform
// hardware rates instead of a single speed factor.
func ExampleAppModel_EvalOn() {
	lib := pace.NewLibrary()
	err := lib.AddSource(`
	  hardware box { flops = 1e9; netlat = 1e-4; netbw = 1e8; }
	  application mm {
	    param n;
	    step compute { flops = 8e9 / n; }
	    step gather  { messages = n; bytes = 4e6; }
	  }`)
	if err != nil {
		panic(err)
	}
	mm, _ := lib.Lookup("mm")
	box, _ := lib.LookupParametricHardware("box")
	for _, n := range []float64{1, 4, 16} {
		t, _ := mm.EvalOn(map[string]float64{"n": n}, box)
		fmt.Printf("n=%2.0f -> %.3f s\n", n, t)
	}
	// Output:
	// n= 1 -> 8.040 s
	// n= 4 -> 2.040 s
	// n=16 -> 0.542 s
}
