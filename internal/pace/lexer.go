package pace

import (
	"strconv"
	"strings"
)

// Lexer splits PSL source text into tokens. Comments run from "//" to end
// of line. Whitespace separates tokens and is otherwise insignificant.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// Next returns the next token, or an error for characters outside the
// language.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Line: line, Col: col}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Line: line, Col: col}, nil

	case isDigit(c) || (c == '.' && isDigit(l.peek2())):
		start := l.pos
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			c := l.peek()
			switch {
			case isDigit(c):
				l.advance()
			case c == '.' && !seenDot && !seenExp:
				seenDot = true
				l.advance()
			case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
				seenExp = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
			default:
				goto done
			}
		}
	done:
		text := l.src[start:l.pos]
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errAt(line, col, "malformed number %q", text)
		}
		return Token{Kind: TokNumber, Text: text, Num: v, Line: line, Col: col}, nil

	case strings.IndexByte("{}()[],;", c) >= 0:
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Line: line, Col: col}, nil

	case c == '=':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokOp, Text: "==", Line: line, Col: col}, nil
		}
		return Token{Kind: TokPunct, Text: "=", Line: line, Col: col}, nil

	case strings.IndexByte("+-*/%", c) >= 0:
		l.advance()
		return Token{Kind: TokOp, Text: string(c), Line: line, Col: col}, nil

	case c == '<' || c == '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokOp, Text: string(c) + "=", Line: line, Col: col}, nil
		}
		return Token{Kind: TokOp, Text: string(c), Line: line, Col: col}, nil

	case c == '!':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokOp, Text: "!=", Line: line, Col: col}, nil
		}
		return Token{Kind: TokOp, Text: "!", Line: line, Col: col}, nil

	case c == '&':
		l.advance()
		if l.peek() != '&' {
			return Token{}, errAt(line, col, "unexpected character %q (did you mean \"&&\"?)", "&")
		}
		l.advance()
		return Token{Kind: TokOp, Text: "&&", Line: line, Col: col}, nil

	case c == '|':
		l.advance()
		if l.peek() != '|' {
			return Token{}, errAt(line, col, "unexpected character %q (did you mean \"||\"?)", "|")
		}
		l.advance()
		return Token{Kind: TokOp, Text: "||", Line: line, Col: col}, nil
	}

	return Token{}, errAt(line, col, "unexpected character %q", string(c))
}

// LexAll tokenises the entire input, excluding the trailing EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
