package pace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNoiseModelDisabled(t *testing.T) {
	m := NoiseModel{}
	if m.Enabled() {
		t.Fatal("zero model enabled")
	}
	for key := uint64(0); key < 100; key++ {
		if f := m.Factor(key); f != 1 {
			t.Fatalf("zero model factor = %v", f)
		}
	}
	if got := m.Apply(42, 7); got != 42 {
		t.Fatalf("Apply on zero model = %v", got)
	}
}

func TestNoiseModelDeterministic(t *testing.T) {
	m := NoiseModel{Rel: 0.3, Seed: 9}
	for key := uint64(0); key < 50; key++ {
		if m.Factor(key) != m.Factor(key) {
			t.Fatal("factor not deterministic")
		}
	}
	// Different seeds decorrelate.
	m2 := NoiseModel{Rel: 0.3, Seed: 10}
	same := 0
	for key := uint64(0); key < 64; key++ {
		if m.Factor(key) == m2.Factor(key) {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds barely change factors: %d/64 equal", same)
	}
}

func TestNoiseModelBounds(t *testing.T) {
	prop := func(relRaw uint8, seed uint64, key uint64) bool {
		rel := float64(relRaw%90) / 100
		m := NoiseModel{Rel: rel, Seed: seed}
		f := m.Factor(key)
		return f >= 1-rel-1e-12 && f <= 1+rel+1e-12 && f > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNoiseModelMeanNearOne(t *testing.T) {
	m := NoiseModel{Rel: 0.5, Seed: 4}
	sum := 0.0
	const n = 100000
	for key := uint64(0); key < n; key++ {
		sum += m.Factor(key)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Fatalf("unbiased model has mean factor %v", mean)
	}
}

func TestNoiseModelBias(t *testing.T) {
	m := NoiseModel{Rel: 0.2, Bias: 0.5, Seed: 1}
	if !m.Enabled() {
		t.Fatal("biased model not enabled")
	}
	sum := 0.0
	const n = 50000
	for key := uint64(0); key < n; key++ {
		f := m.Factor(key)
		if f < 1.5*(1-0.2)-1e-9 || f > 1.5*(1+0.2)+1e-9 {
			t.Fatalf("biased factor %v outside band", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-1.5) > 0.02 {
		t.Fatalf("bias 0.5 gives mean factor %v, want ~1.5", mean)
	}
	// Pure bias, no scatter.
	pure := NoiseModel{Bias: 0.25}
	if f := pure.Factor(3); f != 1.25 {
		t.Fatalf("pure bias factor = %v", f)
	}
}

func TestNoiseModelClamps(t *testing.T) {
	// Huge scatter is clamped so times stay positive.
	m := NoiseModel{Rel: 5, Seed: 2}
	for key := uint64(0); key < 1000; key++ {
		if f := m.Factor(key); f <= 0 {
			t.Fatalf("non-positive factor %v", f)
		}
	}
	// Catastrophic negative bias is floored.
	n := NoiseModel{Bias: -2}
	if f := n.Factor(1); f <= 0 {
		t.Fatalf("negative-bias factor %v", f)
	}
	// Negative Rel behaves like positive.
	p := NoiseModel{Rel: -0.2, Seed: 3}
	for key := uint64(0); key < 100; key++ {
		f := p.Factor(key)
		if f < 0.8-1e-9 || f > 1.2+1e-9 {
			t.Fatalf("negative-Rel factor %v outside band", f)
		}
	}
}
