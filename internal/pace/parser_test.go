package pace

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *AppModel {
	t.Helper()
	m, err := ParseModel(src)
	if err != nil {
		t.Fatalf("ParseModel: %v", err)
	}
	return m
}

func evalModel(t *testing.T, m *AppModel, n float64) float64 {
	t.Helper()
	v, err := m.Eval(map[string]float64{"n": n})
	if err != nil {
		t.Fatalf("Eval(n=%v): %v", n, err)
	}
	return v
}

func TestParseMinimalModel(t *testing.T) {
	m := mustParse(t, "application tiny { param n; time = n * 2; }")
	if m.Name != "tiny" {
		t.Fatalf("name %q", m.Name)
	}
	if got := evalModel(t, m, 3); got != 6 {
		t.Fatalf("time = %v, want 6", got)
	}
}

func TestParseDeadlineDomain(t *testing.T) {
	m := mustParse(t, "application d { param n; deadline = [4, 200]; time = n; }")
	if m.DeadlineLo != 4 || m.DeadlineHi != 200 {
		t.Fatalf("deadline = [%v, %v], want [4, 200]", m.DeadlineLo, m.DeadlineHi)
	}
	if !m.HasDeadlineDomain() {
		t.Fatal("HasDeadlineDomain() = false")
	}
}

func TestParseLetChain(t *testing.T) {
	m := mustParse(t, `application chain {
	  param n;
	  let a = n + 1;
	  let b = a * a;
	  time = b - a;
	}`)
	// n=3: a=4, b=16, time=12
	if got := evalModel(t, m, 3); got != 12 {
		t.Fatalf("time = %v, want 12", got)
	}
}

func TestParseParamDefault(t *testing.T) {
	m := mustParse(t, "application def { param n; param iters = 10; time = n * iters; }")
	v, err := m.Eval(map[string]float64{"n": 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != 20 {
		t.Fatalf("time with default = %v, want 20", v)
	}
	v, err = m.Eval(map[string]float64{"n": 2, "iters": 3})
	if err != nil {
		t.Fatal(err)
	}
	if v != 6 {
		t.Fatalf("time with override = %v, want 6", v)
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":           7,
		"(1 + 2) * 3":         9,
		"10 - 4 - 3":          3, // left associative
		"2 * 3 % 4":           2,
		"-2 * 3":              -6,
		"1 < 2":               1,
		"2 < 1":               0,
		"1 < 2 && 3 < 4":      1,
		"1 < 2 && 4 < 3":      0,
		"1 > 2 || 3 < 4":      1,
		"!0":                  1,
		"!5":                  0,
		"1 + 1 == 2":          1,
		"3 != 3":              0,
		"if(1 < 2, 10, 20)":   10,
		"if(2 < 1, 10, 20)":   20,
		"min(3, 1, 2)":        1,
		"max(3, 1, 2)":        3,
		"ceil(2.1)":           3,
		"floor(2.9)":          2,
		"round(2.5)":          3,
		"abs(-4)":             4,
		"pow(2, 10)":          1024,
		"sqrt(49)":            7,
		"log2(8)":             3,
		"tri(7)":              28,
		"[5, 6, 7][1]":        6,
		"len([1, 2, 3])":      3,
		"sum([1, 2, 3, 4])":   10,
		"[10, 20][2 - 1] + 1": 21,
	}
	for src, want := range cases {
		// deadline guards against negative times; wrap expressions that can
		// be negative in abs for the model-level check.
		m := mustParse(t, "application p { time = abs("+src+"); }")
		v, err := m.Eval(nil)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if absWant := want; absWant < 0 {
			absWant = -absWant
			want = absWant
		}
		if v != want {
			t.Fatalf("%q = %v, want %v", src, v, want)
		}
	}
}

func TestParseNestedIndexing(t *testing.T) {
	m := mustParse(t, "application nest { let grid = [[1, 2], [3, 4]]; time = grid[1][0]; }")
	v, err := m.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("grid[1][0] = %v, want 3", v)
	}
}

func TestParseModelsMultiple(t *testing.T) {
	models, err := ParseModels(`
	  application one { time = 1; }
	  application two { time = 2; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 || models[0].Name != "one" || models[1].Name != "two" {
		t.Fatalf("parsed %v", models)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"", "expected \"application\""},
		{"application { }", "expected identifier"},
		{"application x { }", "no time definition"},
		{"application x { time = 1; time = 2; }", "duplicate time"},
		{"application x { param n; param n; time = 1; }", "duplicate declaration"},
		{"application x { let a = 1; let a = 2; time = 1; }", "duplicate declaration"},
		{"application x { time = 1; } trailing", "unexpected"},
		{"application x { time = ; }", "expected expression"},
		{"application x { time = 1 }", "expected \";\""},
		{"application x { time = foo(1); }", "unknown function"},
		{"application x { bogus = 1; }", "expected statement keyword"},
		{"application x { time = (1; }", "expected \")\""},
		{"application x { time = [1, 2; }", "expected \"]\""},
		{"application x { deadline = [5, 2]; time = 1; }", "deadline domain is empty"},
		{"application x { deadline = [[1], 2]; time = 1; }", "deadline bounds must be numbers"},
		{"application x { time = 1", "expected \";\""},
		{"application x { param n; ", "unterminated"},
	}
	for _, c := range cases {
		_, err := ParseModel(c.src)
		if err == nil {
			t.Errorf("ParseModel(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseModel(%q) error = %q, want substring %q", c.src, err.Error(), c.wantSub)
		}
	}
}

func TestParseModelsEmptyInput(t *testing.T) {
	if _, err := ParseModels("  // nothing here\n"); err == nil {
		t.Fatal("ParseModels on empty input succeeded")
	}
}

func TestModelStringRoundTrip(t *testing.T) {
	src := `application rt {
	  param n;
	  param k = 4;
	  deadline = [2, 36];
	  let profile = [9, 8, 7];
	  time = profile[min(n, 3) - 1] * k;
	}`
	m1 := mustParse(t, src)
	// Rendering the model back to PSL and reparsing must preserve meaning.
	m2 := mustParse(t, m1.String())
	for n := 1.0; n <= 5; n++ {
		v1, err1 := m1.Eval(map[string]float64{"n": n})
		v2, err2 := m2.Eval(map[string]float64{"n": n})
		if err1 != nil || err2 != nil {
			t.Fatalf("n=%v: errs %v / %v", n, err1, err2)
		}
		if v1 != v2 {
			t.Fatalf("round-trip changed semantics at n=%v: %v vs %v", n, v1, v2)
		}
	}
	if m2.DeadlineLo != 2 || m2.DeadlineHi != 36 {
		t.Fatalf("round-trip lost deadline: [%v, %v]", m2.DeadlineLo, m2.DeadlineHi)
	}
}
