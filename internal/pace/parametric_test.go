package pace

import (
	"math"
	"strings"
	"testing"
)

// layeredSrc is a small model suite in the layered CHIP³S-style form: a
// blocked matrix multiply and a halo-exchange stencil on two platforms.
const layeredSrc = `
hardware fastbox {
  flops  = 1e9;
  membw  = 4e9;
  netlat = 20e-6;
  netbw  = 1e8;
}

hardware slowbox {
  flops  = 1e8;
  membw  = 1e9;
  netlat = 100e-6;
  netbw  = 1e7;
}

// Dense matrix multiply, block-distributed over n processors.
application matmul {
  param n;
  param size = 512;
  deadline = [5, 600];
  let work = 2 * pow(size, 3);
  step compute { flops = work / n; mem = 3 * 8 * size * size / n; }
  step gather  { messages = n; bytes = 8 * size * size; }
}

// Jacobi-style stencil with halo exchange per iteration.
application stencil {
  param n;
  param size = 1024;
  param iters = 100;
  step compute { flops = 5 * size * size * iters / n; }
  step halo    { messages = 2 * iters; bytes = 8 * size * 2 * iters; }
}
`

func layeredLib(t testing.TB) *Library {
	t.Helper()
	lib := NewLibrary()
	if err := lib.AddSource(layeredSrc); err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestParseSourceHardwareAndApps(t *testing.T) {
	sf, err := ParseSource(layeredSrc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Models) != 2 || len(sf.Hardware) != 2 {
		t.Fatalf("parsed %d models, %d hardware", len(sf.Models), len(sf.Hardware))
	}
	if sf.Hardware[0].Name != "fastbox" || sf.Hardware[0].Rates[RateFlops] != 1e9 {
		t.Fatalf("hardware: %+v", sf.Hardware[0])
	}
	if !sf.Models[0].HasSteps() {
		t.Fatal("matmul lost its steps")
	}
}

func TestLayeredModelEvalOn(t *testing.T) {
	lib := layeredLib(t)
	mm, _ := lib.Lookup("matmul")
	fast, _ := lib.LookupParametricHardware("fastbox")

	got, err := mm.EvalOn(map[string]float64{"n": 4}, fast)
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation: work = 2*512^3 = 268435456 flops; /4 procs /1e9
	// = 0.0671 s. mem = 3*8*512^2/4 = 1572864 B / 4e9 = 0.000393 s.
	// gather: 4 messages * 20e-6 + 8*512^2 / 1e8 = 8e-5 + 0.0209 s.
	want := 2*math.Pow(512, 3)/4/1e9 + 3*8*512*512/4/4e9 + 4*20e-6 + 8*512*512/1e8
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("matmul on fastbox(4) = %v, want %v", got, want)
	}
}

func TestLayeredModelCrossPlatformOrdering(t *testing.T) {
	lib := layeredLib(t)
	fast, _ := lib.LookupParametricHardware("fastbox")
	slow, _ := lib.LookupParametricHardware("slowbox")
	for _, name := range []string{"matmul", "stencil"} {
		m, _ := lib.Lookup(name)
		for n := 1.0; n <= 16; n *= 2 {
			f, err := m.EvalOn(map[string]float64{"n": n}, fast)
			if err != nil {
				t.Fatal(err)
			}
			s, err := m.EvalOn(map[string]float64{"n": n}, slow)
			if err != nil {
				t.Fatal(err)
			}
			if s <= f {
				t.Fatalf("%s(n=%v): slowbox (%v) not slower than fastbox (%v)", name, n, s, f)
			}
		}
	}
}

func TestLayeredModelCommunicationDominatesEventually(t *testing.T) {
	// matmul's gather cost grows with n (more messages) while compute
	// shrinks: on a latency-bound platform the curve must turn upward,
	// the same U-shape as Table 1's improc.
	lib := layeredLib(t)
	mm, _ := lib.Lookup("matmul")
	hw := &ParametricHardware{Name: "lat", Rates: map[string]float64{
		RateFlops: 1e9, RateMemBW: 4e9, RateNetLat: 0.05, RateNetBW: 1e9,
	}}
	t2, _ := mm.EvalOn(map[string]float64{"n": 2}, hw)
	t64, _ := mm.EvalOn(map[string]float64{"n": 64}, hw)
	if t64 <= t2 {
		t.Fatalf("latency-bound matmul kept speeding up: t(2)=%v t(64)=%v", t2, t64)
	}
}

func TestEnginePredictOnCaches(t *testing.T) {
	lib := layeredLib(t)
	mm, _ := lib.Lookup("matmul")
	fast, _ := lib.LookupParametricHardware("fastbox")
	e := NewEngine()
	for i := 0; i < 5; i++ {
		if _, err := e.PredictOn(mm, fast, 8); err != nil {
			t.Fatal(err)
		}
	}
	if s := e.Stats(); s.Evaluations != 1 || s.CacheHits != 4 {
		t.Fatalf("stats: %+v", s)
	}
	// Parametric and factor-based entries share the cache without
	// colliding.
	sweep, _ := CaseStudyLibrary().Lookup("sweep3d")
	if _, err := e.Predict(sweep, SGIOrigin2000, 8); err != nil {
		t.Fatal(err)
	}
	if e.CacheLen() != 2 {
		t.Fatalf("cache holds %d entries", e.CacheLen())
	}
}

func TestEnginePredictOnValidation(t *testing.T) {
	lib := layeredLib(t)
	mm, _ := lib.Lookup("matmul")
	fast, _ := lib.LookupParametricHardware("fastbox")
	e := NewEngine()
	if _, err := e.PredictOn(nil, fast, 1); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := e.PredictOn(mm, nil, 1); err == nil {
		t.Error("nil hardware accepted")
	}
	if _, err := e.PredictOn(mm, fast, 0); err == nil {
		t.Error("zero procs accepted")
	}
}

func TestEvalOnErrors(t *testing.T) {
	lib := layeredLib(t)
	mm, _ := lib.Lookup("matmul")
	// Missing rate: a hardware model without network parameters cannot
	// price the gather step.
	noNet := &ParametricHardware{Name: "nonet", Rates: map[string]float64{RateFlops: 1e9}}
	if _, err := mm.EvalOn(map[string]float64{"n": 2}, noNet); err == nil || !strings.Contains(err.Error(), "lacks rate") {
		t.Fatalf("missing rate: %v", err)
	}
	// Profile-form models reject EvalOn...
	sweep, _ := CaseStudyLibrary().Lookup("sweep3d")
	fast, _ := lib.LookupParametricHardware("fastbox")
	if _, err := sweep.EvalOn(map[string]float64{"n": 2}, fast); err == nil {
		t.Fatal("profile model evaluated against parametric hardware")
	}
	// ...and layered models reject plain Eval.
	if _, err := mm.Eval(map[string]float64{"n": 2}); err == nil {
		t.Fatal("layered model evaluated without hardware")
	}
	if _, err := mm.EvalOn(map[string]float64{"n": 2}, nil); err == nil {
		t.Fatal("nil hardware accepted")
	}
}

func TestParseHardwareErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"hardware h { warp = 9; }", "unknown hardware rate"},
		{"hardware h { flops = 1e9; flops = 2e9; }", "duplicate rate"},
		{"hardware h { }", "declares no rates"},
		{"hardware h { flops = 0; }", "must be positive"},
		{"hardware h { netlat = -1; flops = 1; }", "negative latency"},
		{"hardware h { flops = [1]; }", "must be a number"},
		{"hardware { flops = 1; }", "expected identifier"},
	}
	for _, c := range cases {
		_, err := ParseSource(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSource(%q) err = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseStepErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string
	}{
		{"application a { step s { volume = 1; } }", "unknown step field"},
		{"application a { step s { flops = 1; flops = 2; } }", "duplicate field"},
		{"application a { step s { } }", "no cost fields"},
		{"application a { step s { flops = 1; } step s { flops = 2; } }", "duplicate step"},
		{"application a { param n; }", "no time definition and no steps"},
	}
	for _, c := range cases {
		_, err := ParseSource(c.src)
		if err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSource(%q) err = %v, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestStepNegativeCostRejected(t *testing.T) {
	lib := NewLibrary()
	err := lib.AddSource("application a { param n; step s { flops = 10 - n; } }")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := lib.Lookup("a")
	hw := &ParametricHardware{Name: "h", Rates: map[string]float64{RateFlops: 1}}
	if _, err := m.EvalOn(map[string]float64{"n": 20}, hw); err == nil {
		t.Fatal("negative step cost accepted")
	}
}

func TestLayeredModelMixedWithTime(t *testing.T) {
	lib := NewLibrary()
	err := lib.AddSource(`
	  hardware h { flops = 10; }
	  application mix { param n; step s { flops = 100; } time = 3; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := lib.Lookup("mix")
	hw, _ := lib.LookupParametricHardware("h")
	v, err := m.EvalOn(map[string]float64{"n": 1}, hw)
	if err != nil {
		t.Fatal(err)
	}
	if v != 13 { // 100/10 + 3
		t.Fatalf("mixed model = %v, want 13", v)
	}
}

func TestHardwareStringRoundTrip(t *testing.T) {
	lib := layeredLib(t)
	fast, _ := lib.LookupParametricHardware("fastbox")
	sf, err := ParseSource(fast.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", fast.String(), err)
	}
	if len(sf.Hardware) != 1 || sf.Hardware[0].Rates[RateNetBW] != fast.Rates[RateNetBW] {
		t.Fatalf("round trip lost rates: %+v", sf.Hardware)
	}
}

func TestLayeredModelStringRoundTrip(t *testing.T) {
	lib := layeredLib(t)
	mm, _ := lib.Lookup("matmul")
	fast, _ := lib.LookupParametricHardware("fastbox")
	sf, err := ParseSource(mm.String())
	if err != nil {
		t.Fatalf("re-parse of rendered model: %v\n%s", err, mm.String())
	}
	m2 := sf.Models[0]
	for n := 1.0; n <= 8; n *= 2 {
		a, err1 := mm.EvalOn(map[string]float64{"n": n}, fast)
		b, err2 := m2.EvalOn(map[string]float64{"n": n}, fast)
		if err1 != nil || err2 != nil {
			t.Fatalf("n=%v: %v / %v", n, err1, err2)
		}
		if a != b {
			t.Fatalf("round trip changed prediction at n=%v: %v vs %v", n, a, b)
		}
	}
}

func TestLibraryHardwareRegistry(t *testing.T) {
	lib := layeredLib(t)
	if got := len(lib.HardwareModels()); got != 2 {
		t.Fatalf("%d hardware models", got)
	}
	if lib.HardwareModels()[0].Name != "fastbox" {
		t.Fatalf("hardware not sorted: %v", lib.HardwareModels()[0].Name)
	}
	if _, ok := lib.LookupParametricHardware("warpdrive"); ok {
		t.Fatal("phantom hardware found")
	}
	if err := lib.AddHardware(nil); err == nil {
		t.Fatal("nil hardware accepted")
	}
	dup := &ParametricHardware{Name: "fastbox", Rates: map[string]float64{RateFlops: 1}}
	if err := lib.AddHardware(dup); err == nil {
		t.Fatal("duplicate hardware accepted")
	}
}

func TestParseModelsRejectsHardware(t *testing.T) {
	if _, err := ParseModels("hardware h { flops = 1; }"); err == nil {
		t.Fatal("ParseModels accepted hardware declarations")
	}
}

func TestProfileFromLayered(t *testing.T) {
	lib := layeredLib(t)
	mm, _ := lib.Lookup("matmul")
	fast, _ := lib.LookupParametricHardware("fastbox")
	prof, err := ProfileFromLayered(mm, fast, 16, 5, 300)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Name != "matmul_fastbox" {
		t.Fatalf("profile name %q", prof.Name)
	}
	if prof.DeadlineLo != 5 || prof.DeadlineHi != 300 {
		t.Fatalf("deadline domain [%v, %v]", prof.DeadlineLo, prof.DeadlineHi)
	}
	// The profile must agree with the layered model at every sampled
	// count and clamp beyond it.
	for k := 1; k <= 16; k++ {
		want, err := mm.EvalOn(map[string]float64{"n": float64(k)}, fast)
		if err != nil {
			t.Fatal(err)
		}
		got, err := prof.Eval(map[string]float64{"n": float64(k)})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > math.Abs(want)*1e-9+1e-12 {
			t.Fatalf("profile(%d) = %v, want %v", k, got, want)
		}
	}
	at16, _ := prof.Eval(map[string]float64{"n": 16})
	at32, err := prof.Eval(map[string]float64{"n": 32})
	if err != nil || at32 != at16 {
		t.Fatalf("profile clamp: %v vs %v (%v)", at32, at16, err)
	}
}

func TestProfileFromLayeredValidation(t *testing.T) {
	lib := layeredLib(t)
	mm, _ := lib.Lookup("matmul")
	fast, _ := lib.LookupParametricHardware("fastbox")
	sweep, _ := CaseStudyLibrary().Lookup("sweep3d")
	if _, err := ProfileFromLayered(sweep, fast, 16, 1, 2); err == nil {
		t.Error("profile model accepted as layered input")
	}
	if _, err := ProfileFromLayered(nil, fast, 16, 1, 2); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := ProfileFromLayered(mm, fast, 0, 1, 2); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := ProfileFromLayered(mm, fast, 16, 5, 2); err == nil {
		t.Error("inverted deadline domain accepted")
	}
}
