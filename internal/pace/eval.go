package pace

import (
	"fmt"
	"math"
)

// Env holds name bindings during expression evaluation. Lookups fall
// through to the parent environment.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv returns an environment with the given parent (which may be nil).
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]Value{}, parent: parent}
}

// Bind sets name to v in this environment.
func (e *Env) Bind(name string, v Value) { e.vars[name] = v }

// Lookup resolves name, searching parents.
func (e *Env) Lookup(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return Value{}, false
}

func (n *NumberLit) eval(*Env) (Value, error) { return NumValue(n.Val), nil }

func (id *Ident) eval(env *Env) (Value, error) {
	if v, ok := env.Lookup(id.Name); ok {
		return v, nil
	}
	return Value{}, errAt(id.Line, id.Col, "undefined name %q", id.Name)
}

func (a *ArrayLit) eval(env *Env) (Value, error) {
	elems := make([]Value, len(a.Elems))
	for i, e := range a.Elems {
		v, err := e.eval(env)
		if err != nil {
			return Value{}, err
		}
		elems[i] = v
	}
	if elems == nil {
		elems = []Value{}
	}
	return Value{Arr: elems}, nil
}

func (ix *IndexExpr) eval(env *Env) (Value, error) {
	base, err := ix.Base.eval(env)
	if err != nil {
		return Value{}, err
	}
	if !base.IsArray() {
		return Value{}, errAt(ix.Line, ix.Col, "cannot index a number")
	}
	idxV, err := ix.Index.eval(env)
	if err != nil {
		return Value{}, err
	}
	if idxV.IsArray() {
		return Value{}, errAt(ix.Line, ix.Col, "array index must be a number")
	}
	i := int(math.Round(idxV.Num))
	if math.Abs(idxV.Num-float64(i)) > 1e-9 {
		return Value{}, errAt(ix.Line, ix.Col, "array index %g is not an integer", idxV.Num)
	}
	if i < 0 || i >= len(base.Arr) {
		return Value{}, errAt(ix.Line, ix.Col, "array index %d out of range [0, %d)", i, len(base.Arr))
	}
	return base.Arr[i], nil
}

func (u *UnaryExpr) eval(env *Env) (Value, error) {
	v, err := u.X.eval(env)
	if err != nil {
		return Value{}, err
	}
	if v.IsArray() {
		return Value{}, errAt(u.Line, u.Col, "operator %q requires a number", u.Op)
	}
	switch u.Op {
	case "-":
		return NumValue(-v.Num), nil
	case "!":
		return boolValue(v.Num == 0), nil
	}
	return Value{}, errAt(u.Line, u.Col, "unknown unary operator %q", u.Op)
}

func boolValue(b bool) Value {
	if b {
		return NumValue(1)
	}
	return NumValue(0)
}

func (b *BinaryExpr) eval(env *Env) (Value, error) {
	l, err := b.L.eval(env)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit logical operators.
	switch b.Op {
	case "&&":
		if l.IsArray() {
			return Value{}, errAt(b.Line, b.Col, "operator && requires numbers")
		}
		if l.Num == 0 {
			return NumValue(0), nil
		}
		r, err := b.R.eval(env)
		if err != nil {
			return Value{}, err
		}
		if r.IsArray() {
			return Value{}, errAt(b.Line, b.Col, "operator && requires numbers")
		}
		return boolValue(r.Num != 0), nil
	case "||":
		if l.IsArray() {
			return Value{}, errAt(b.Line, b.Col, "operator || requires numbers")
		}
		if l.Num != 0 {
			return NumValue(1), nil
		}
		r, err := b.R.eval(env)
		if err != nil {
			return Value{}, err
		}
		if r.IsArray() {
			return Value{}, errAt(b.Line, b.Col, "operator || requires numbers")
		}
		return boolValue(r.Num != 0), nil
	}

	r, err := b.R.eval(env)
	if err != nil {
		return Value{}, err
	}
	if l.IsArray() || r.IsArray() {
		return Value{}, errAt(b.Line, b.Col, "operator %q requires numbers", b.Op)
	}
	x, y := l.Num, r.Num
	switch b.Op {
	case "+":
		return NumValue(x + y), nil
	case "-":
		return NumValue(x - y), nil
	case "*":
		return NumValue(x * y), nil
	case "/":
		if y == 0 {
			return Value{}, errAt(b.Line, b.Col, "division by zero")
		}
		return NumValue(x / y), nil
	case "%":
		if y == 0 {
			return Value{}, errAt(b.Line, b.Col, "modulo by zero")
		}
		return NumValue(math.Mod(x, y)), nil
	case "==":
		return boolValue(x == y), nil
	case "!=":
		return boolValue(x != y), nil
	case "<":
		return boolValue(x < y), nil
	case "<=":
		return boolValue(x <= y), nil
	case ">":
		return boolValue(x > y), nil
	case ">=":
		return boolValue(x >= y), nil
	}
	return Value{}, errAt(b.Line, b.Col, "unknown operator %q", b.Op)
}

// builtin implements a PSL intrinsic function.
type builtin struct {
	minArgs int
	maxArgs int // -1 means variadic
	apply   func(c *CallExpr, args []Value) (Value, error)
}

func numericArgs(c *CallExpr, args []Value) ([]float64, error) {
	out := make([]float64, len(args))
	for i, a := range args {
		if a.IsArray() {
			return nil, errAt(c.Line, c.Col, "%s: argument %d must be a number", c.Fn, i+1)
		}
		out[i] = a.Num
	}
	return out, nil
}

func num1(fn func(float64) float64) func(*CallExpr, []Value) (Value, error) {
	return func(c *CallExpr, args []Value) (Value, error) {
		xs, err := numericArgs(c, args)
		if err != nil {
			return Value{}, err
		}
		return NumValue(fn(xs[0])), nil
	}
}

var builtins = map[string]builtin{
	"min": {2, -1, func(c *CallExpr, args []Value) (Value, error) {
		xs, err := numericArgs(c, args)
		if err != nil {
			return Value{}, err
		}
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return NumValue(m), nil
	}},
	"max": {2, -1, func(c *CallExpr, args []Value) (Value, error) {
		xs, err := numericArgs(c, args)
		if err != nil {
			return Value{}, err
		}
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return NumValue(m), nil
	}},
	"ceil":  {1, 1, num1(math.Ceil)},
	"floor": {1, 1, num1(math.Floor)},
	"round": {1, 1, num1(math.Round)},
	"abs":   {1, 1, num1(math.Abs)},
	"sqrt":  {1, 1, num1(math.Sqrt)},
	"log":   {1, 1, num1(math.Log)},
	"log2":  {1, 1, num1(math.Log2)},
	"exp":   {1, 1, num1(math.Exp)},
	"pow": {2, 2, func(c *CallExpr, args []Value) (Value, error) {
		xs, err := numericArgs(c, args)
		if err != nil {
			return Value{}, err
		}
		return NumValue(math.Pow(xs[0], xs[1])), nil
	}},
	"if": {3, 3, func(c *CallExpr, args []Value) (Value, error) {
		if args[0].IsArray() {
			return Value{}, errAt(c.Line, c.Col, "if: condition must be a number")
		}
		if args[0].Num != 0 {
			return args[1], nil
		}
		return args[2], nil
	}},
	"len": {1, 1, func(c *CallExpr, args []Value) (Value, error) {
		if !args[0].IsArray() {
			return Value{}, errAt(c.Line, c.Col, "len: argument must be an array")
		}
		return NumValue(float64(len(args[0].Arr))), nil
	}},
	"sum": {1, 1, func(c *CallExpr, args []Value) (Value, error) {
		if !args[0].IsArray() {
			return Value{}, errAt(c.Line, c.Col, "sum: argument must be an array")
		}
		total := 0.0
		for i, e := range args[0].Arr {
			if e.IsArray() {
				return Value{}, errAt(c.Line, c.Col, "sum: element %d is not a number", i)
			}
			total += e.Num
		}
		return NumValue(total), nil
	}},
	// tri(k) is the k-th triangular number k(k+1)/2, a common communication
	// volume term in the image-processing style models.
	"tri": {1, 1, num1(func(k float64) float64 { return k * (k + 1) / 2 })},
}

func (c *CallExpr) eval(env *Env) (Value, error) {
	b, ok := builtins[c.Fn]
	if !ok {
		return Value{}, errAt(c.Line, c.Col, "unknown function %q", c.Fn)
	}
	if len(c.Args) < b.minArgs || (b.maxArgs >= 0 && len(c.Args) > b.maxArgs) {
		return Value{}, errAt(c.Line, c.Col, "%s: wrong number of arguments (got %d)", c.Fn, len(c.Args))
	}
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.eval(env)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	return b.apply(c, args)
}

// Eval evaluates the model's time expression under the given parameter
// bindings and returns the predicted execution time on the reference
// platform in seconds. Parameters without bindings use their declared
// defaults; a missing binding for a defaultless parameter is an error.
// Layered models (with steps) have no reference platform: use EvalOn.
func (m *AppModel) Eval(bindings map[string]float64) (float64, error) {
	if m.Time == nil {
		return 0, fmt.Errorf("pace: model %q is a layered model; evaluate it against a parametric hardware model with EvalOn", m.Name)
	}
	if m.HasSteps() {
		return 0, fmt.Errorf("pace: model %q declares steps; evaluate it against a parametric hardware model with EvalOn", m.Name)
	}
	env, err := m.bindEnv(bindings)
	if err != nil {
		return 0, err
	}
	v, err := m.Time.eval(env)
	if err != nil {
		return 0, fmt.Errorf("pace: model %q: time: %w", m.Name, err)
	}
	if v.IsArray() {
		return 0, fmt.Errorf("pace: model %q: time expression yielded an array", m.Name)
	}
	if math.IsNaN(v.Num) || math.IsInf(v.Num, 0) {
		return 0, fmt.Errorf("pace: model %q: time expression yielded %v", m.Name, v.Num)
	}
	if v.Num < 0 {
		return 0, fmt.Errorf("pace: model %q: negative predicted time %g", m.Name, v.Num)
	}
	return v.Num, nil
}

func (m *AppModel) hasParam(name string) bool {
	for _, p := range m.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}
