package pace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The real PACE toolkit layers application models over resource models
// written in its CHIP³S language: an application is decomposed into
// computation and communication components whose costs are evaluated
// against per-platform rates (Fig. 1's "resource tools"). The case-study
// library uses the simpler calibrated-profile form (apps.go) because it
// reproduces Table 1 exactly; this file adds the layered form for models
// of new applications on new platforms.
//
// PSL grammar additions:
//
//	hardware <name> { <rate> = <expr>; ... }
//	application <name> { ... step <name> { <field> = <expr>; ... } ... }
//
// Recognised hardware rates: flops (flop/s), membw (B/s), netlat (s per
// message), netbw (B/s). Step fields: flops (floating point work), mem
// (bytes moved through memory), bytes (bytes communicated), messages
// (network messages), seconds (fixed cost). A step's cost on hardware H
// is
//
//	flops/H.flops + mem/H.membw + messages*H.netlat + bytes/H.netbw + seconds
//
// and the model's predicted time is the sum over steps (plus the "time"
// expression, if present, interpreted as seconds).

// Hardware rate names.
const (
	RateFlops  = "flops"
	RateMemBW  = "membw"
	RateNetLat = "netlat"
	RateNetBW  = "netbw"
)

var knownRates = map[string]bool{
	RateFlops:  true,
	RateMemBW:  true,
	RateNetLat: true,
	RateNetBW:  true,
}

// Step field names.
const (
	FieldFlops    = "flops"
	FieldMem      = "mem"
	FieldBytes    = "bytes"
	FieldMessages = "messages"
	FieldSeconds  = "seconds"
)

var knownFields = map[string]bool{
	FieldFlops:    true,
	FieldMem:      true,
	FieldBytes:    true,
	FieldMessages: true,
	FieldSeconds:  true,
}

// StepDecl is one computation/communication component of an application
// model. Fields map field names to cost expressions.
type StepDecl struct {
	Name   string
	Fields map[string]Expr
	order  []string
}

// ParametricHardware is a PACE-style resource model: named rates measured
// for one platform.
type ParametricHardware struct {
	Name  string
	Rates map[string]float64
}

// Rate returns the named rate; missing rates are an error at prediction
// time, reported by cost evaluation.
func (h *ParametricHardware) Rate(name string) (float64, bool) {
	v, ok := h.Rates[name]
	return v, ok
}

// Validate checks the resource model.
func (h *ParametricHardware) Validate() error {
	if h.Name == "" {
		return fmt.Errorf("pace: parametric hardware has empty name")
	}
	if len(h.Rates) == 0 {
		return fmt.Errorf("pace: hardware %q declares no rates", h.Name)
	}
	for name, v := range h.Rates {
		if !knownRates[name] {
			return fmt.Errorf("pace: hardware %q declares unknown rate %q", h.Name, name)
		}
		if name == RateNetLat {
			if v < 0 {
				return fmt.Errorf("pace: hardware %q: negative latency %g", h.Name, v)
			}
			continue
		}
		if v <= 0 {
			return fmt.Errorf("pace: hardware %q: rate %s must be positive, got %g", h.Name, name, v)
		}
	}
	return nil
}

// String renders the hardware model as PSL.
func (h *ParametricHardware) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "hardware %s {\n", h.Name)
	names := make([]string, 0, len(h.Rates))
	for n := range h.Rates {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %s = %s;\n", n, trimFloat(h.Rates[n]))
	}
	b.WriteString("}")
	return b.String()
}

// HasSteps reports whether the model uses the layered component form.
func (m *AppModel) HasSteps() bool { return len(m.Steps) > 0 }

// EvalOn evaluates the model against a parametric resource model: the sum
// of all step costs at the hardware's rates, plus the plain time
// expression (seconds) if declared.
func (m *AppModel) EvalOn(bindings map[string]float64, hw *ParametricHardware) (float64, error) {
	if hw == nil {
		return 0, fmt.Errorf("pace: model %q: nil hardware", m.Name)
	}
	if err := hw.Validate(); err != nil {
		return 0, err
	}
	if !m.HasSteps() {
		return 0, fmt.Errorf("pace: model %q has no steps; use Eval with a reference-platform factor", m.Name)
	}
	env, err := m.bindEnv(bindings)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, st := range m.Steps {
		cost, err := stepCost(m.Name, st, env, hw)
		if err != nil {
			return 0, err
		}
		total += cost
	}
	if m.Time != nil {
		v, err := m.Time.eval(env)
		if err != nil {
			return 0, fmt.Errorf("pace: model %q: time: %w", m.Name, err)
		}
		if v.IsArray() {
			return 0, fmt.Errorf("pace: model %q: time expression yielded an array", m.Name)
		}
		total += v.Num
	}
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return 0, fmt.Errorf("pace: model %q on %q: prediction is %v", m.Name, hw.Name, total)
	}
	if total < 0 {
		return 0, fmt.Errorf("pace: model %q on %q: negative predicted time %g", m.Name, hw.Name, total)
	}
	return total, nil
}

// bindEnv binds params and evaluates lets, shared by Eval and EvalOn.
func (m *AppModel) bindEnv(bindings map[string]float64) (*Env, error) {
	env := NewEnv(nil)
	for _, p := range m.Params {
		if v, ok := bindings[p.Name]; ok {
			env.Bind(p.Name, NumValue(v))
			continue
		}
		if p.Default == nil {
			return nil, fmt.Errorf("pace: model %q: missing required parameter %q", m.Name, p.Name)
		}
		v, err := p.Default.eval(env)
		if err != nil {
			return nil, fmt.Errorf("pace: model %q: default for %q: %w", m.Name, p.Name, err)
		}
		env.Bind(p.Name, v)
	}
	for name := range bindings {
		if !m.hasParam(name) {
			return nil, fmt.Errorf("pace: model %q: unknown parameter %q", m.Name, name)
		}
	}
	for _, l := range m.Lets {
		v, err := l.Expr.eval(env)
		if err != nil {
			return nil, fmt.Errorf("pace: model %q: let %s: %w", m.Name, l.Name, err)
		}
		env.Bind(l.Name, v)
	}
	return env, nil
}

// ProfileFromLayered evaluates a layered model on a parametric platform
// across 1..maxProcs processors and returns an equivalent profile-form
// model (the shape of the Table 1 case-study models), named
// "<model>_<hardware>". The profile model is resource-independent in the
// scheduler's sense — the platform is baked in — so it can drive a Local
// scheduler whose factor is 1. deadlineLo/Hi become the new model's
// requirement domain.
func ProfileFromLayered(m *AppModel, hw *ParametricHardware, maxProcs int, deadlineLo, deadlineHi float64) (*AppModel, error) {
	if m == nil || !m.HasSteps() {
		return nil, fmt.Errorf("pace: ProfileFromLayered needs a layered model")
	}
	if maxProcs < 1 || maxProcs > 64 {
		return nil, fmt.Errorf("pace: profile over %d processors out of range", maxProcs)
	}
	if deadlineHi < deadlineLo || deadlineLo < 0 {
		return nil, fmt.Errorf("pace: bad deadline domain [%g, %g]", deadlineLo, deadlineHi)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "application %s_%s {\n  param n;\n", m.Name, hw.Name)
	if deadlineHi > 0 {
		fmt.Fprintf(&b, "  deadline = [%s, %s];\n", trimFloat(deadlineLo), trimFloat(deadlineHi))
	}
	b.WriteString("  let profile = [")
	for k := 1; k <= maxProcs; k++ {
		v, err := m.EvalOn(map[string]float64{"n": float64(k)}, hw)
		if err != nil {
			return nil, err
		}
		if k > 1 {
			b.WriteString(", ")
		}
		b.WriteString(trimFloat(v))
	}
	b.WriteString("];\n")
	fmt.Fprintf(&b, "  time = profile[min(n, %d) - 1];\n}", maxProcs)
	return ParseModel(b.String())
}

func stepCost(model string, st StepDecl, env *Env, hw *ParametricHardware) (float64, error) {
	eval := func(field string) (float64, bool, error) {
		e, ok := st.Fields[field]
		if !ok {
			return 0, false, nil
		}
		v, err := e.eval(env)
		if err != nil {
			return 0, false, fmt.Errorf("pace: model %q step %q: %s: %w", model, st.Name, field, err)
		}
		if v.IsArray() {
			return 0, false, fmt.Errorf("pace: model %q step %q: %s yielded an array", model, st.Name, field)
		}
		if v.Num < 0 {
			return 0, false, fmt.Errorf("pace: model %q step %q: negative %s (%g)", model, st.Name, field, v.Num)
		}
		return v.Num, true, nil
	}
	needRate := func(rate string) (float64, error) {
		r, ok := hw.Rate(rate)
		if !ok {
			return 0, fmt.Errorf("pace: hardware %q lacks rate %q needed by model %q step %q", hw.Name, rate, model, st.Name)
		}
		return r, nil
	}

	total := 0.0
	if v, ok, err := eval(FieldFlops); err != nil {
		return 0, err
	} else if ok && v > 0 {
		r, err := needRate(RateFlops)
		if err != nil {
			return 0, err
		}
		total += v / r
	}
	if v, ok, err := eval(FieldMem); err != nil {
		return 0, err
	} else if ok && v > 0 {
		r, err := needRate(RateMemBW)
		if err != nil {
			return 0, err
		}
		total += v / r
	}
	if v, ok, err := eval(FieldMessages); err != nil {
		return 0, err
	} else if ok && v > 0 {
		r, err := needRate(RateNetLat)
		if err != nil {
			return 0, err
		}
		total += v * r
	}
	if v, ok, err := eval(FieldBytes); err != nil {
		return 0, err
	} else if ok && v > 0 {
		r, err := needRate(RateNetBW)
		if err != nil {
			return 0, err
		}
		total += v / r
	}
	if v, ok, err := eval(FieldSeconds); err != nil {
		return 0, err
	} else if ok {
		total += v
	}
	return total, nil
}
