// Package pace reimplements, in miniature, the role the PACE toolkit plays
// in the paper: producing predicted execution times t_x(ρ, σ) for an
// application model σ on a set of processing nodes ρ (Nudd et al., "PACE –
// a toolset for the performance prediction of parallel and distributed
// systems").
//
// Application models are written in a small performance specification
// language (PSL) and compiled by a lexer → parser → evaluator pipeline; a
// hardware model scales the reference-platform prediction to each platform.
// An Engine combines the two on demand and memoises results, mirroring the
// paper's demand-driven evaluation scheme with a cache of past evaluations
// (§2.2).
package pace

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds produced by the lexer.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokKeyword // application, param, let, time, deadline
	TokPunct   // { } ( ) [ ] , ; =
	TokOp      // + - * / % < <= > >= == != && || !
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokKeyword:
		return "keyword"
	case TokPunct:
		return "punctuation"
	case TokOp:
		return "operator"
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical unit with its source position.
type Token struct {
	Kind TokenKind
	Text string
	Num  float64 // valid when Kind == TokNumber
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// Pos formats the token position for error messages.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }

var keywords = map[string]bool{
	"application": true,
	"param":       true,
	"let":         true,
	"time":        true,
	"deadline":    true,
	"hardware":    true,
	"step":        true,
}

// Error is a PSL front-end error carrying a source position.
type Error struct {
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("psl:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...interface{}) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
