package pace

import (
	"testing"
)

// table1 is the paper's Table 1: predicted execution times in seconds on
// the SGIOrigin2000 for 1..16 processors, plus the deadline domains.
var table1 = []struct {
	app     string
	lo, hi  float64
	profile [16]float64
}{
	{"sweep3d", 4, 200, [16]float64{50, 40, 30, 25, 23, 20, 17, 15, 13, 11, 9, 7, 6, 5, 4, 4}},
	{"fft", 10, 100, [16]float64{25, 24, 23, 22, 21, 20, 19, 18, 17, 16, 15, 14, 13, 12, 11, 10}},
	{"improc", 20, 192, [16]float64{48, 41, 35, 30, 26, 23, 21, 20, 20, 21, 23, 26, 30, 35, 41, 48}},
	{"closure", 2, 36, [16]float64{9, 9, 8, 8, 7, 7, 6, 6, 5, 5, 4, 4, 3, 3, 2, 2}},
	{"jacobi", 6, 160, [16]float64{40, 35, 30, 25, 23, 20, 17, 15, 13, 11, 10, 9, 8, 7, 6, 6}},
	{"memsort", 10, 68, [16]float64{17, 16, 15, 14, 13, 12, 11, 10, 10, 11, 12, 13, 14, 15, 16, 17}},
	{"cpi", 2, 128, [16]float64{32, 26, 21, 17, 14, 11, 9, 7, 5, 4, 3, 2, 4, 7, 12, 20}},
}

func TestCaseStudyLibraryReproducesTable1(t *testing.T) {
	lib := CaseStudyLibrary()
	if lib.Len() != 7 {
		t.Fatalf("library has %d models, want 7", lib.Len())
	}
	for _, row := range table1 {
		m, ok := lib.Lookup(row.app)
		if !ok {
			t.Fatalf("model %q missing", row.app)
		}
		if m.DeadlineLo != row.lo || m.DeadlineHi != row.hi {
			t.Errorf("%s deadline = [%v, %v], want [%v, %v]", row.app, m.DeadlineLo, m.DeadlineHi, row.lo, row.hi)
		}
		for n := 1; n <= 16; n++ {
			got, err := m.Eval(map[string]float64{"n": float64(n)})
			if err != nil {
				t.Fatalf("%s n=%d: %v", row.app, n, err)
			}
			if got != row.profile[n-1] {
				t.Errorf("%s n=%d: predicted %v, want %v (Table 1)", row.app, n, got, row.profile[n-1])
			}
		}
	}
}

func TestModelsClampBeyond16Processors(t *testing.T) {
	lib := CaseStudyLibrary()
	for _, name := range CaseStudyAppNames {
		m, _ := lib.Lookup(name)
		at16, err := m.Eval(map[string]float64{"n": 16})
		if err != nil {
			t.Fatal(err)
		}
		at32, err := m.Eval(map[string]float64{"n": 32})
		if err != nil {
			t.Fatalf("%s n=32: %v", name, err)
		}
		if at16 != at32 {
			t.Errorf("%s: time at 32 procs (%v) differs from 16 procs (%v); §4.1 says no further improvement", name, at32, at16)
		}
	}
}

func TestCaseStudyAppNamesMatchLibrary(t *testing.T) {
	lib := CaseStudyLibrary()
	names := lib.Names()
	if len(names) != len(CaseStudyAppNames) {
		t.Fatalf("library names %v vs CaseStudyAppNames %v", names, CaseStudyAppNames)
	}
	for i, n := range CaseStudyAppNames {
		if names[i] != n {
			t.Fatalf("library order %v, want %v", names, CaseStudyAppNames)
		}
	}
}

func TestLibraryDuplicateRejected(t *testing.T) {
	lib := NewLibrary()
	m := mustParse(t, "application dup { time = 1; }")
	if err := lib.Add(m); err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(m); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if err := lib.Add(nil); err == nil {
		t.Fatal("nil Add succeeded")
	}
}

func TestLibraryAddSourceBadPSL(t *testing.T) {
	lib := NewLibrary()
	if err := lib.AddSource("application broken {"); err == nil {
		t.Fatal("AddSource on broken PSL succeeded")
	}
}

func TestLibrarySortedNames(t *testing.T) {
	lib := CaseStudyLibrary()
	sorted := lib.SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatalf("SortedNames not sorted: %v", sorted)
		}
	}
}

func TestLibraryModelsOrder(t *testing.T) {
	lib := CaseStudyLibrary()
	models := lib.Models()
	for i, m := range models {
		if m.Name != CaseStudyAppNames[i] {
			t.Fatalf("Models()[%d] = %q, want %q", i, m.Name, CaseStudyAppNames[i])
		}
	}
}

func TestAllDeadlineDomainsDeclared(t *testing.T) {
	for _, m := range CaseStudyLibrary().Models() {
		if !m.HasDeadlineDomain() {
			t.Errorf("model %q has no deadline domain", m.Name)
		}
		if m.DeadlineLo <= 0 || m.DeadlineHi <= m.DeadlineLo {
			t.Errorf("model %q has degenerate deadline domain [%v, %v]", m.Name, m.DeadlineLo, m.DeadlineHi)
		}
	}
}
